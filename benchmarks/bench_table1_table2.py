"""Tables I and II: environment and program inventory."""

from conftest import run_once

from repro.analysis.experiments import table1_machine, table2_packages
from repro.cluster.machine import lonestar4


def test_table1_machine(benchmark, record_table):
    text = run_once(benchmark, table1_machine)
    spec = lonestar4()
    record_table("table1_machine", text, rows=[spec],
                 config={"machine": "lonestar4"})
    assert spec.total_cores == 144        # 12 nodes × 12 cores (paper)
    assert spec.node.cores == 12


def test_table2_packages(benchmark, record_table):
    text = run_once(benchmark, table2_packages)
    record_table("table2_packages", text,
                 config={"experiment": "table2_packages"})
    for name in ("Amber", "Gromacs", "NAMD", "Tinker", "GBr6",
                 "OCT_MPI+CILK"):
        assert name in text
