"""Serve-layer throughput: cold vs warm, across worker counts.

The service's value proposition is the artifact cache: a warm repeat
of a request must skip the surface/octree/Born phases entirely (a full
``epol`` hit) and hand back the bitwise-identical energy.  This bench
pushes one repeated workload through :class:`repro.serve.SolveService`
at 1/2/4 workers, cold (fresh cache) and warm (same requests again),
and records throughput plus the p50/p99 service latency the service
itself measured.

Acceptance: warm throughput ≥ 5× cold at every worker count, warm
energies bitwise equal to cold.
"""

from conftest import run_once

from repro.molecules import synthetic_protein
from repro.serve import SolveRequest, SolveService

WORKERS = (1, 2, 4)
MOLECULES = 3
REPEATS = 4  # each molecule requested this many times per pass
ATOMS = 500


def _requests():
    pool = [synthetic_protein(ATOMS + 80 * i, seed=20 + i)
            for i in range(MOLECULES)]
    # Distinct idempotency keys so repeats exercise the *cache*, not
    # in-flight coalescing (which would hide the artifact reuse).
    return [SolveRequest(molecule=pool[i % MOLECULES],
                         idempotency_key=f"bench-{i}")
            for i in range(MOLECULES * REPEATS)]


def _pass(service, requests):
    tickets = [service.submit(req) for req in requests]
    service.drain(timeout=600.0)
    results = [t.result(timeout=1.0) for t in tickets]
    stats = service.stats()
    assert all(r.status == "ok" for r in results)
    wall = sum(r.service_seconds for r in results)
    return results, stats, wall


def _run():
    rows = []
    for workers in WORKERS:
        service = SolveService(workers=workers, queue_capacity=256,
                               batch_size=4)
        try:
            requests = _requests()
            cold_res, _, cold_busy = _pass(service, requests)
            warm_res, stats, warm_busy = _pass(service, _requests())
        finally:
            service.close()
        for c, w in zip(cold_res, warm_res):
            assert w.energy == c.energy, "warm energy must be bitwise"
        assert all(r.cache == "epol" for r in warm_res)
        n = len(requests)
        rows.append({
            "workers": workers,
            "requests": n,
            "cold_busy_seconds": cold_busy,
            "warm_busy_seconds": warm_busy,
            "speedup": cold_busy / warm_busy,
            "cold_service_p50": sorted(
                r.service_seconds for r in cold_res)[n // 2],
            "warm_service_p50": sorted(
                r.service_seconds for r in warm_res)[n // 2],
            "cold_service_p99": max(r.service_seconds for r in cold_res),
            "warm_service_p99": max(r.service_seconds for r in warm_res),
            "hit_rate": stats.hit_rate,
        })
    return rows


def test_serve_throughput(benchmark, record_table):
    rows = run_once(benchmark, _run)
    lines = [f"serve throughput ({MOLECULES} molecules × {REPEATS} "
             f"requests, {ATOMS}+ atoms): cold vs warm"]
    for r in rows:
        lines.append(
            f"{r['workers']} worker(s): cold {r['cold_busy_seconds']:7.3f} s "
            f"(p50 {r['cold_service_p50'] * 1e3:7.2f} ms)  "
            f"warm {r['warm_busy_seconds']:7.3f} s "
            f"(p50 {r['warm_service_p50'] * 1e3:7.2f} ms)  "
            f"{r['speedup']:6.1f}x  hit rate {r['hit_rate']:.0%}")
    record_table("bench_serve_throughput", "\n".join(lines), rows=rows,
                 config={"workers": list(WORKERS),
                         "molecules": MOLECULES, "repeats": REPEATS,
                         "atoms": ATOMS})
    for r in rows:
        assert r["speedup"] >= 5.0, \
            f"warm pass only {r['speedup']:.1f}x faster at " \
            f"{r['workers']} workers"
