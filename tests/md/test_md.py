"""Implicit-solvent mechanics tests: potential, minimiser, Langevin."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.md import ImplicitSolventPotential, langevin, minimize
from repro.md.langevin import KB, instantaneous_temperature
from repro.molecules import synthetic_protein


@pytest.fixture(scope="module")
def system():
    mol = synthetic_protein(260, seed=33)
    pot = ImplicitSolventPotential(mol, ApproxParams(), use_octree=False)
    return mol, pot


class TestPotential:
    def test_energy_finite_and_negative(self, system):
        mol, pot = system
        e = pot.energy(mol.positions)
        assert np.isfinite(e)
        assert e < 0  # solvation dominates the soft-sphere floor

    def test_forces_match_finite_differences(self, system):
        """The full potential (GB + repulsion) must be the exact
        gradient of its energy at fixed Born radii."""
        mol, pot = system
        x = mol.positions.copy()
        F = pot.forces(x)
        h = 1e-5
        rng = np.random.default_rng(0)
        for atom in rng.choice(mol.natoms, size=4, replace=False):
            for axis in range(3):
                xp = x.copy()
                xp[atom, axis] += h
                xm = x.copy()
                xm[atom, axis] -= h
                fd = -(pot.energy(xp) - pot.energy(xm)) / (2 * h)
                assert F[atom, axis] == pytest.approx(fd, rel=5e-3,
                                                      abs=5e-4)

    def test_repulsion_engages_on_overlap(self, system):
        mol, pot = system
        x = mol.positions.copy()
        # Slam two atoms together: energy must rise vs their separation.
        x[1] = x[0] + np.array([0.05, 0.0, 0.0])
        e_clash = pot.energy(x)
        x[1] = x[0] + np.array([5.0, 0.0, 0.0])
        e_apart = pot.energy(x)
        assert e_clash > e_apart

    def test_validation(self, system):
        mol, _ = system
        with pytest.raises(ValueError):
            ImplicitSolventPotential(mol, repulsion_k=-1.0)


class TestMinimize:
    def test_energy_never_increases_between_refreshes(self, system):
        mol, pot = system
        pot.refresh(mol.positions)
        res = minimize(pot, mol.positions, max_steps=12,
                       refresh_every=1000)  # no refresh inside the run
        diffs = np.diff(res.energies)
        assert np.all(diffs <= 1e-9)
        assert res.energy <= res.energies[0]

    def test_progress_made(self, system):
        mol, pot = system
        pot.refresh(mol.positions)
        res = minimize(pot, mol.positions, max_steps=10,
                       refresh_every=1000)
        assert res.energy < res.energies[0]
        assert res.steps_taken >= 1


class TestLangevin:
    def test_runs_and_stays_finite(self, system):
        mol, pot = system
        pot.refresh(mol.positions)
        res = langevin(pot, mol.positions, steps=20, dt=0.001,
                       refresh_every=1000, seed=1)
        assert np.all(np.isfinite(res.positions))
        assert len(res.energies) == 20
        assert all(np.isfinite(e) for e in res.energies)

    def test_thermostat_in_band(self, system):
        """BAOAB holds the temperature near the target (coarse band —
        short run, tiny system, and the start is not fully relaxed, so
        some relaxation heat is expected)."""
        mol, pot = system
        pot.refresh(mol.positions)
        res = langevin(pot, mol.positions, steps=60, dt=0.001,
                       temperature=300.0, friction=20.0,
                       refresh_every=1000, seed=2)
        t = res.mean_temperature(skip=20)
        assert 120.0 < t < 700.0

    def test_temperature_formula(self):
        v = np.ones((10, 3))
        m = np.full(10, 12.0)
        t = instantaneous_temperature(v, m)
        ke = 0.5 * np.sum(m[:, None] * v ** 2) / 418.4
        assert t == pytest.approx(2 * ke / (3 * 10 * KB))

    def test_validation(self, system):
        mol, pot = system
        with pytest.raises(ValueError):
            langevin(pot, mol.positions, dt=0.0)
