"""Package-emulator tests: interfaces, OOM thresholds, orderings."""

import pytest

from repro.baselines import PACKAGES, get_package
from repro.baselines.packages import PackageResult
from repro.molecules import synthetic_protein


class TestRegistry:
    def test_all_five_packages(self):
        assert set(PACKAGES) == {"Amber", "Gromacs", "NAMD", "Tinker",
                                 "GBr6"}

    def test_case_insensitive_lookup(self):
        assert get_package("amber").name == "Amber"
        assert get_package("GBR6").name == "GBr6"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_package("charmm")


class TestRuns:
    @pytest.fixture(scope="class")
    def mol(self):
        return synthetic_protein(500, seed=6)

    @pytest.mark.parametrize("name", list(PACKAGES))
    def test_run_produces_result(self, mol, name):
        res = get_package(name).run(mol, cores=12)
        assert isinstance(res, PackageResult)
        assert not res.oom
        assert res.wall_seconds > 0
        assert res.energy < 0                # physical polarization energy
        assert len(res.born_radii) == mol.natoms
        assert res.memory_bytes > 0
        assert "E=" in res.describe()

    def test_serial_package_ignores_cores(self, mol):
        r1 = get_package("GBr6").run(mol, cores=1, compute_energy=False)
        r12 = get_package("GBr6").run(mol, cores=12, compute_energy=False)
        assert r1.wall_seconds == pytest.approx(r12.wall_seconds)
        assert r12.cores == 1

    def test_more_cores_faster_for_mpi(self, mol):
        t1 = get_package("Amber").run(mol, cores=1,
                                      compute_energy=False).wall_seconds
        t12 = get_package("Amber").run(mol, cores=12,
                                       compute_energy=False).wall_seconds
        assert t12 < t1

    def test_cutoff_override(self, mol):
        wide = get_package("Amber").run(mol, compute_energy=False,
                                        cutoff_override=50.0)
        narrow = get_package("Amber").run(mol, compute_energy=False,
                                          cutoff_override=8.0)
        assert narrow.memory_bytes < wide.memory_bytes

    def test_compute_energy_flag(self, mol):
        res = get_package("Gromacs").run(mol, compute_energy=False)
        assert res.energy is None
        assert res.born_radii is not None


class TestMemoryModel:
    def test_oom_thresholds_match_paper(self):
        """Paper §V-D: Tinker dies above ~12k atoms, GBr⁶ above ~13k;
        the cutoff packages survive.  Checked on the memory model alone
        (no 12k-atom solve needed)."""
        class FakeMol:
            def __init__(self, n):
                self.natoms = n
            def nbytes(self):
                return 80 * self.natoms

        tinker = get_package("Tinker")
        gbr6 = get_package("GBr6")
        amber = get_package("Amber")
        ram = 24 * 1024 ** 3

        assert tinker.memory_estimate(FakeMol(11000), None) < ram
        assert tinker.memory_estimate(FakeMol(13500), None) > ram
        assert gbr6.memory_estimate(FakeMol(12500), None) < ram
        assert gbr6.memory_estimate(FakeMol(14500), None) > ram

    def test_oom_result_shape(self):
        mol = synthetic_protein(400, seed=3)
        pk = get_package("Tinker")
        pk.bytes_per_pair = 1e9  # force OOM
        res = pk.run(mol)
        assert res.oom
        assert res.energy is None and res.wall_seconds is None
        assert "OOM" in res.describe()


class TestRelativeSpeeds:
    def test_gromacs_faster_than_amber(self):
        mol = synthetic_protein(2000, seed=8)
        amber = get_package("Amber").run(mol, compute_energy=False)
        gro = get_package("Gromacs").run(mol, compute_energy=False)
        assert 1.5 < amber.wall_seconds / gro.wall_seconds < 5.0

    def test_namd_tracks_amber(self):
        mol = synthetic_protein(2000, seed=8)
        amber = get_package("Amber").run(mol, compute_energy=False)
        namd = get_package("NAMD").run(mol, compute_energy=False)
        assert 0.5 < amber.wall_seconds / namd.wall_seconds < 1.6
