"""Volume r⁶ (GBr⁶ emulator) tests, incl. the closed-form integral."""

import numpy as np
import pytest
from scipy import integrate

from repro.baselines.gbr6_volume import (
    born_radii_gbr6_volume,
    sphere_r6_integral,
)
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.molecules.molecule import Molecule


class TestSphereIntegral:
    @pytest.mark.parametrize("d,a", [(5.0, 1.5), (3.0, 1.0), (10.0, 2.5)])
    def test_matches_numeric_quadrature(self, d, a):
        def integrand(u, r):
            return 2 * np.pi * r * r / (r * r + d * d - 2 * r * d * u) ** 3

        numeric, _ = integrate.dblquad(integrand, 0, a, -1, 1)
        closed = sphere_r6_integral(np.array([d]), np.array([a]))[0]
        assert closed == pytest.approx(numeric, rel=1e-9)

    def test_far_field_limit(self):
        """d ≫ a: the ball acts as a point of volume (4/3)πa³."""
        d, a = 100.0, 1.0
        got = sphere_r6_integral(np.array([d]), np.array([a]))[0]
        want = (4.0 / 3.0) * np.pi * a ** 3 / d ** 6
        assert got == pytest.approx(want, rel=1e-3)

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            sphere_r6_integral(np.array([1.0]), np.array([1.5]))

    def test_monotone_decreasing_in_distance(self):
        d = np.linspace(3.0, 30.0, 50)
        v = sphere_r6_integral(d, np.full(50, 1.0))
        assert np.all(np.diff(v) < 0)


class TestGbr6Radii:
    def test_isolated_atom_recovers_intrinsic(self):
        mol = Molecule(np.array([[0.0, 0, 0], [60.0, 0, 0]]),
                       np.array([1.0, -1.0]), np.array([1.5, 2.0]))
        R = born_radii_gbr6_volume(mol, None, None)
        assert np.allclose(R, mol.radii, rtol=0.02)

    def test_radii_floor_and_finite(self, protein_small):
        R = born_radii_gbr6_volume(protein_small, None, None)
        assert np.all(R >= protein_small.radii - 1e-12)
        assert np.all(np.isfinite(R))

    def test_energy_tracks_naive(self, protein_medium):
        """Fig. 9: GBr⁶ matches the naive energy closely — both are r⁶
        formulations, one volume- and one surface-based."""
        ref = epol_naive(protein_medium,
                         born_radii_naive_r6(protein_medium))
        e = epol_naive(protein_medium,
                       born_radii_gbr6_volume(protein_medium, None, None))
        assert abs(e - ref) / abs(ref) < 0.12
