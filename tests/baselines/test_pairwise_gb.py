"""HCT/OBC/Still-r4 Born-radius model tests."""

import numpy as np
import pytest

from repro.baselines.nblist import NonbondedList
from repro.baselines.pairwise_gb import (
    HCT_OFFSET,
    _hct_pair_integral,
    born_radii_hct,
    born_radii_obc,
    born_radii_still_r4,
)
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.molecules.molecule import Molecule


def _isolated_pair(d=50.0):
    return Molecule(np.array([[0.0, 0, 0], [d, 0, 0]]),
                    np.array([1.0, -1.0]), np.array([1.5, 1.7]))


class TestHctIntegral:
    def test_nonnegative(self):
        rng = np.random.default_rng(0)
        r = rng.uniform(1.0, 20.0, 200)
        rho = rng.uniform(0.5, 2.0, 200)
        s = rng.uniform(0.3, 1.5, 200)
        assert np.all(_hct_pair_integral(r, rho, s) >= 0.0)

    def test_distant_descreener_negligible(self):
        val = _hct_pair_integral(np.array([100.0]), np.array([1.5]),
                                 np.array([1.0]))
        assert val[0] < 1e-5

    def test_engulfed_descreener_zero(self):
        # Descreening sphere entirely inside atom i's own radius.
        val = _hct_pair_integral(np.array([0.2]), np.array([2.0]),
                                 np.array([0.5]))
        assert val[0] == 0.0


class TestBornModels:
    def test_isolated_atoms_recover_intrinsic(self):
        mol = _isolated_pair(d=80.0)
        for fn in (born_radii_hct, born_radii_obc):
            R = fn(mol, None, None)
            assert np.allclose(R, mol.radii, rtol=0.05)

    def test_radii_at_least_intrinsic(self, protein_small):
        for fn in (born_radii_hct, born_radii_obc):
            R = fn(protein_small, None, None)
            assert np.all(R >= protein_small.radii - 1e-12)
            assert np.all(np.isfinite(R))

    def test_burial_increases_radius(self, protein_small):
        """Core atoms (close to centroid) get larger Born radii than
        surface atoms — the defining property of descreening."""
        R = born_radii_hct(protein_small, None, None)
        d = np.linalg.norm(protein_small.positions
                           - protein_small.centroid(), axis=1)
        core = R[d < np.percentile(d, 20)].mean()
        rim = R[d > np.percentile(d, 80)].mean()
        assert core > rim

    def test_cutoff_close_to_dense(self, protein_small):
        dense = born_radii_hct(protein_small, None, None)
        cut = born_radii_hct(protein_small, None, 30.0)
        assert np.allclose(dense, cut, rtol=0.08)

    def test_prebuilt_nblist_matches_cutoff(self, protein_small):
        nb = NonbondedList.build(protein_small.positions, 12.0)
        a = born_radii_hct(protein_small, nb, None)
        b = born_radii_hct(protein_small, None, 12.0)
        assert np.allclose(a, b)


class TestEnergyAgreement:
    """Fig. 9 calibration: HCT/OBC energies track the naive r⁶ energy;
    the Still-r4 stand-in (Tinker) is systematically shifted."""

    def test_hct_obc_close(self, protein_medium):
        ref = epol_naive(protein_medium,
                         born_radii_naive_r6(protein_medium))
        for fn in (born_radii_hct, born_radii_obc):
            e = epol_naive(protein_medium, fn(protein_medium, None, None))
            assert abs(e - ref) / abs(ref) < 0.25

    def test_still_r4_shifted_low(self, protein_medium):
        ref = epol_naive(protein_medium,
                         born_radii_naive_r6(protein_medium))
        e = epol_naive(protein_medium,
                       born_radii_still_r4(protein_medium))
        assert 0.3 < e / ref < 0.9  # paper: "around 70 % of naive"

    def test_offset_constant(self):
        assert HCT_OFFSET == pytest.approx(0.09)
