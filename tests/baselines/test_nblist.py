"""Nonbonded-list tests: correctness and the cutoff-cubic property."""

import numpy as np
import pytest

from repro.baselines.nblist import NonbondedList


@pytest.fixture(scope="module")
def cloud():
    return np.random.default_rng(4).uniform(0, 20, size=(400, 3))


class TestCorrectness:
    def test_pairs_match_bruteforce(self, cloud):
        cutoff = 4.0
        nb = NonbondedList.build(cloud, cutoff)
        got = set()
        for i in range(nb.natoms):
            for j in nb.partners_of(i):
                assert i < j
                got.add((i, int(j)))
        diff = cloud[:, None] - cloud[None, :]
        d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        want = {(i, j) for i in range(len(cloud))
                for j in range(i + 1, len(cloud)) if d[i, j] <= cutoff}
        assert got == want

    def test_iter_pair_blocks_covers_all(self, cloud):
        nb = NonbondedList.build(cloud, 4.0)
        seen = 0
        for ii, jj in nb.iter_pair_blocks(block=1000):
            assert np.all(ii < jj)
            seen += len(ii)
        assert seen == nb.npairs

    def test_validation(self, cloud):
        with pytest.raises(ValueError):
            NonbondedList.build(cloud, 0.0)

    def test_no_pairs_case(self):
        pts = np.array([[0.0, 0, 0], [100.0, 0, 0]])
        nb = NonbondedList.build(pts, 1.0)
        assert nb.npairs == 0


class TestScaling:
    def test_cubic_growth_with_cutoff(self, protein_medium):
        """Paper §II: nblist size grows ~cubically with the cutoff."""
        pos = protein_medium.positions
        small = NonbondedList.build(pos, 5.0)
        big = NonbondedList.build(pos, 10.0)
        ratio = big.npairs / max(1, small.npairs)
        assert ratio > 4.0  # ideal 8×; finite molecule shaves it

    def test_linear_growth_with_atoms(self):
        """At fixed density and cutoff, pairs grow ~linearly in atoms."""
        rng = np.random.default_rng(7)
        def pairs(n):
            side = (n / 0.05) ** (1 / 3)
            pts = rng.uniform(0, side, size=(n, 3))
            return NonbondedList.build(pts, 5.0).npairs
        p1, p2 = pairs(1000), pairs(4000)
        assert 2.5 < p2 / p1 < 6.5  # ~4× for 4× atoms

    def test_nbytes_tracks_pairs(self, cloud):
        nb = NonbondedList.build(cloud, 4.0)
        assert nb.nbytes() >= 8 * nb.npairs
        assert nb.update_ops() > nb.npairs
