"""PDB / PQR / XYZQR reader-writer tests."""

import io

import numpy as np
import pytest

from repro.molecules import pdbio
from repro.molecules.molecule import Molecule

PQR_SAMPLE = """\
REMARK generated
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  0.1414 1.5500
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  0.0962 1.7000
HETATM    3  O   HOH A   2       9.000   1.000   2.000 -0.8340 1.5200
END
"""

PDB_SAMPLE = """\
HEADER    TEST
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C
ATOM      3  O   HOH A   2       9.000   1.000   2.000  1.00  0.00           O
END
"""


class TestPQR:
    def test_read(self):
        mol = pdbio.read_pqr(io.StringIO(PQR_SAMPLE))
        assert mol.natoms == 3
        assert mol.charges[0] == pytest.approx(0.1414)
        assert mol.radii[1] == pytest.approx(1.70)
        assert np.allclose(mol.positions[2], [9.0, 1.0, 2.0])

    def test_no_atoms_raises(self):
        with pytest.raises(ValueError):
            pdbio.read_pqr(io.StringIO("REMARK nothing\nEND\n"))

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            pdbio.read_pqr(io.StringIO("ATOM 1 N ALA\n"))

    def test_roundtrip(self, tmp_path):
        mol = Molecule(np.random.default_rng(0).normal(size=(4, 3)),
                       np.array([0.1, -0.2, 0.3, -0.2]),
                       np.array([1.2, 1.5, 1.7, 1.8]), name="rt")
        path = tmp_path / "m.pqr"
        pdbio.write_pqr(mol, path)
        back = pdbio.read_pqr(path)
        assert np.allclose(back.positions, mol.positions, atol=1e-3)
        assert np.allclose(back.charges, mol.charges, atol=1e-4)
        assert np.allclose(back.radii, mol.radii, atol=1e-4)


class TestPDB:
    def test_read_elements_to_radii(self):
        mol = pdbio.read_pdb(io.StringIO(PDB_SAMPLE))
        assert mol.natoms == 3
        assert mol.radii[0] == pytest.approx(1.55)  # N
        assert mol.radii[1] == pytest.approx(1.70)  # C
        assert mol.radii[2] == pytest.approx(1.52)  # O
        assert np.all(mol.charges == 0.0)

    def test_element_fallback_from_atom_name(self):
        line = ("ATOM      1  CA  ALA A   1      "
                "1.000   2.000   3.000  1.00  0.00")
        mol = pdbio.read_pdb(io.StringIO(line))
        assert mol.radii[0] == pytest.approx(1.70)


class TestXYZQR:
    def test_roundtrip(self, tmp_path):
        mol = Molecule(np.random.default_rng(1).normal(size=(6, 3)),
                       np.linspace(-1, 1, 6), np.full(6, 1.4), name="x")
        path = tmp_path / "m.xyzqr"
        pdbio.write_xyzqr(mol, path)
        back = pdbio.read_xyzqr(path)
        assert np.allclose(back.positions, mol.positions, atol=1e-6)
        assert np.allclose(back.charges, mol.charges, atol=1e-6)

    def test_comments_and_validation(self):
        text = "# hello\n1 2 3 0.5 1.5\n\n"
        mol = pdbio.read_xyzqr(io.StringIO(text))
        assert mol.natoms == 1
        with pytest.raises(ValueError):
            pdbio.read_xyzqr(io.StringIO("1 2 3 0.5\n"))
        with pytest.raises(ValueError):
            pdbio.read_xyzqr(io.StringIO("# only comments\n"))
