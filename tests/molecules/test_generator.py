"""Synthetic molecule generators: determinism, realism, suite shape."""

import numpy as np
import pytest

from repro.molecules.generator import (
    random_ligand,
    synthetic_protein,
    virus_capsid,
    zdock_like_suite,
)


class TestSyntheticProtein:
    def test_deterministic(self):
        a = synthetic_protein(300, seed=4, with_surface=False)
        b = synthetic_protein(300, seed=4, with_surface=False)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.charges, b.charges)

    def test_seed_changes_geometry(self):
        a = synthetic_protein(300, seed=4, with_surface=False)
        b = synthetic_protein(300, seed=5, with_surface=False)
        assert not np.array_equal(a.positions, b.positions)

    def test_size_close_to_request(self):
        for n in (200, 1000):
            m = synthetic_protein(n, seed=0, with_surface=False)
            assert abs(m.natoms - n) <= 13  # rounded to whole residues

    def test_near_neutral_total_charge(self):
        m = synthetic_protein(650, seed=7, with_surface=False)
        # Residues carry integer formal charges; the total stays small.
        assert abs(m.total_charge()) < 15

    def test_compactness(self):
        """A folded globule, not an extended coil: radius ≪ chain length."""
        m = synthetic_protein(1300, seed=3, with_surface=False)
        n_res = m.natoms / 13
        chain_length = 3.8 * n_res
        assert m.bounding_radius() < 0.3 * chain_length

    def test_surface_attached_by_default(self):
        m = synthetic_protein(200, seed=0)
        assert m.nqpoints > 0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            synthetic_protein(5)


class TestZdockSuite:
    def test_sizes_span_and_sorted(self):
        suite = zdock_like_suite(count=10, min_atoms=400, max_atoms=4000,
                                 with_surface=False)
        sizes = [m.natoms for m in suite]
        assert sizes == sorted(sizes)
        assert sizes[0] >= 300 and sizes[-1] <= 4300

    def test_count(self):
        suite = zdock_like_suite(count=5, max_atoms=1000,
                                 with_surface=False)
        assert len(suite) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            zdock_like_suite(count=0)


class TestVirusCapsid:
    def test_hollow_shell(self):
        m = virus_capsid(8000, seed=11, with_surface=False)
        d = np.linalg.norm(m.positions - m.centroid(), axis=1)
        # Hollow: no atoms near the centre, all within a thin-ish shell.
        assert d.min() > 0.3 * d.max()

    def test_size(self):
        m = virus_capsid(8000, seed=11, with_surface=False)
        assert 6000 < m.natoms < 10000

    def test_deterministic(self):
        a = virus_capsid(6000, seed=2, with_surface=False)
        b = virus_capsid(6000, seed=2, with_surface=False)
        assert np.array_equal(a.positions, b.positions)


class TestRandomLigand:
    def test_small_and_neutral(self):
        lig = random_ligand(30, seed=1, with_surface=False)
        assert lig.natoms == 30
        assert lig.total_charge() == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_ligand(1)
