"""Rigid-transform algebra tests (docking octree reuse)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.molecules.transform import RigidTransform


class TestConstruction:
    def test_identity(self):
        t = RigidTransform.identity()
        pts = np.random.default_rng(0).normal(size=(5, 3))
        assert np.allclose(t.apply(pts), pts)

    def test_rejects_non_orthogonal(self):
        with pytest.raises(ValueError):
            RigidTransform(np.eye(3) * 2.0, np.zeros(3))

    def test_rejects_reflection(self):
        R = np.diag([1.0, 1.0, -1.0])
        with pytest.raises(ValueError):
            RigidTransform(R, np.zeros(3))

    def test_rotation_about_axis(self):
        t = RigidTransform.rotation_about_axis([0, 0, 1], np.pi / 2)
        out = t.apply(np.array([1.0, 0.0, 0.0]))
        assert np.allclose(out, [0.0, 1.0, 0.0], atol=1e-12)

    def test_zero_axis_rejected(self):
        with pytest.raises(ValueError):
            RigidTransform.rotation_about_axis([0, 0, 0], 1.0)


class TestAlgebra:
    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_inverse_roundtrip(self, seed):
        t = RigidTransform.random(seed=seed)
        pts = np.random.default_rng(seed + 1).normal(size=(7, 3))
        assert np.allclose(t.inverse().apply(t.apply(pts)), pts,
                           atol=1e-9)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_distances_preserved(self, seed):
        t = RigidTransform.random(seed=seed)
        pts = np.random.default_rng(seed).normal(size=(6, 3))
        before = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        moved = t.apply(pts)
        after = np.linalg.norm(moved[:, None] - moved[None, :], axis=-1)
        assert np.allclose(before, after, atol=1e-9)

    def test_compose_order(self):
        rot = RigidTransform.rotation_about_axis([0, 0, 1], np.pi / 2)
        shift = RigidTransform.translation_of([1.0, 0.0, 0.0])
        # (shift ∘ rot): rotate first, then translate.
        t = shift.compose(rot)
        out = t.apply(np.array([1.0, 0.0, 0.0]))
        assert np.allclose(out, [1.0, 1.0, 0.0], atol=1e-12)

    def test_apply_vectors_ignores_translation(self):
        t = RigidTransform.translation_of([5.0, 5.0, 5.0])
        v = np.array([[0.0, 0.0, 1.0]])
        assert np.allclose(t.apply_vectors(v), v)
