"""Unit tests for the Molecule / SurfaceSamples containers."""

import numpy as np
import pytest

from repro.molecules.molecule import Molecule, SurfaceSamples


def _mol(n=5):
    rng = np.random.default_rng(0)
    return Molecule(rng.normal(size=(n, 3)), rng.normal(size=n),
                    np.full(n, 1.5), name="m")


class TestMolecule:
    def test_basic_properties(self):
        m = _mol(7)
        assert m.natoms == 7
        assert len(m) == 7
        assert m.nqpoints == 0
        assert m.positions.dtype == np.float64

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Molecule(np.zeros((3, 2)), np.zeros(3), np.ones(3))
        with pytest.raises(ValueError):
            Molecule(np.zeros((3, 3)), np.zeros(2), np.ones(3))
        with pytest.raises(ValueError):
            Molecule(np.zeros((3, 3)), np.zeros(3), np.ones(2))

    def test_rejects_empty_and_bad_radii(self):
        with pytest.raises(ValueError):
            Molecule(np.zeros((0, 3)), np.zeros(0), np.zeros(0))
        with pytest.raises(ValueError):
            Molecule(np.zeros((2, 3)), np.zeros(2), np.array([1.0, 0.0]))

    def test_centroid_and_bounding_radius(self):
        m = Molecule(np.array([[0.0, 0, 0], [2.0, 0, 0]]),
                     np.zeros(2), np.ones(2))
        assert np.allclose(m.centroid(), [1.0, 0, 0])
        assert m.bounding_radius() == pytest.approx(1.0)

    def test_total_charge(self):
        m = Molecule(np.zeros((2, 3)) + [[0], [1]], np.array([0.25, -1.0]),
                     np.ones(2))
        assert m.total_charge() == pytest.approx(-0.75)

    def test_require_surface_raises_without_surface(self):
        with pytest.raises(ValueError, match="no surface"):
            _mol().require_surface()

    def test_with_surface_and_nbytes(self):
        m = _mol(4)
        surf = SurfaceSamples(np.zeros((6, 3)),
                              np.tile([0.0, 0.0, 1.0], (6, 1)),
                              np.ones(6))
        m2 = m.with_surface(surf)
        assert m2.nqpoints == 6
        assert m.nqpoints == 0
        assert m2.nbytes() > m.nbytes()


class TestSurfaceSamples:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            SurfaceSamples(np.zeros((3, 3)), np.zeros((2, 3)), np.ones(3))

    def test_weighted_normals(self):
        s = SurfaceSamples(np.zeros((2, 3)),
                           np.array([[1.0, 0, 0], [0, 1.0, 0]]),
                           np.array([2.0, 3.0]))
        assert np.allclose(s.weighted_normals,
                           [[2.0, 0, 0], [0, 3.0, 0]])

    def test_total_area_and_subset(self):
        s = SurfaceSamples(np.zeros((4, 3)),
                           np.tile([0.0, 0, 1.0], (4, 1)),
                           np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.total_area() == pytest.approx(10.0)
        sub = s.subset(np.array([1, 3]))
        assert sub.total_area() == pytest.approx(6.0)
        assert len(sub) == 2
