"""Surface sampling: area exactness, burial culling, normals."""

import numpy as np
import pytest

from repro.molecules.molecule import Molecule
from repro.molecules.surface import exposed_fraction, sample_surface


def _sphere(radius=2.0, center=(0, 0, 0)):
    return Molecule(np.array([center], dtype=float), np.array([1.0]),
                    np.array([radius]))


class TestSingleSphere:
    def test_area_is_exact(self):
        mol = sample_surface(_sphere(2.0), subdivisions=2, degree=2)
        assert mol.surface.total_area() == pytest.approx(
            4.0 * np.pi * 4.0, rel=1e-12)

    def test_normals_radial_unit(self):
        mol = sample_surface(_sphere(3.0), subdivisions=1, degree=1)
        s = mol.surface
        assert np.allclose(np.linalg.norm(s.normals, axis=1), 1.0)
        radial = s.points / np.linalg.norm(s.points, axis=1, keepdims=True)
        assert np.allclose(radial, s.normals, atol=1e-12)

    def test_points_on_sphere(self):
        mol = sample_surface(_sphere(2.5), subdivisions=2, degree=3)
        r = np.linalg.norm(mol.surface.points, axis=1)
        assert np.allclose(r, 2.5, atol=1e-12)

    def test_probe_radius_inflates(self):
        mol = sample_surface(_sphere(2.0), probe_radius=1.4)
        r = np.linalg.norm(mol.surface.points, axis=1)
        assert np.allclose(r, 3.4, atol=1e-12)


class TestBurialCulling:
    def test_fully_buried_atom_contributes_nothing(self):
        mol = Molecule(np.array([[0.0, 0, 0], [0.0, 0, 0.1]]),
                       np.zeros(2), np.array([3.0, 0.5]))
        out = sample_surface(mol, subdivisions=1)
        # All surviving samples sit on the big sphere.
        d_big = np.linalg.norm(out.surface.points, axis=1)
        assert np.allclose(d_big, 3.0, atol=1e-9)

    def test_two_overlapping_spheres_lose_lens_area(self):
        mol = Molecule(np.array([[0.0, 0, 0], [2.0, 0, 0]]),
                       np.zeros(2), np.array([1.5, 1.5]))
        out = sample_surface(mol, subdivisions=2, degree=2)
        full = 2 * 4 * np.pi * 1.5 ** 2
        area = out.surface.total_area()
        assert area < full * 0.95            # lens removed
        assert area > full * 0.5             # but most area survives

    def test_disjoint_spheres_keep_full_area(self):
        mol = Molecule(np.array([[0.0, 0, 0], [10.0, 0, 0]]),
                       np.zeros(2), np.array([1.5, 1.5]))
        out = sample_surface(mol, subdivisions=2, degree=2)
        full = 2 * 4 * np.pi * 1.5 ** 2
        assert out.surface.total_area() == pytest.approx(full, rel=1e-9)

    def test_contained_sphere_fully_culled(self):
        """A sphere strictly inside a bigger one contributes no samples."""
        mol = Molecule(np.array([[0.0, 0, 0], [0.0, 0, 0.1]]),
                       np.zeros(2), np.array([1.0, 3.0]))
        out = sample_surface(mol, subdivisions=1)
        r = np.linalg.norm(out.surface.points - [0.0, 0, 0.1], axis=1)
        assert np.allclose(r, 3.0, atol=1e-9)
        # Total area equals the big sphere's alone.
        assert out.surface.total_area() == pytest.approx(
            4 * np.pi * 9.0, rel=1e-9)

    def test_coincident_equal_spheres_share_surface(self):
        """Two identical coincident spheres: samples sit exactly on both
        surfaces and survive culling (distance == radius is 'on', not
        'inside')."""
        mol = Molecule(np.zeros((2, 3)), np.zeros(2), np.ones(2))
        out = sample_surface(mol, subdivisions=0)
        assert len(out.surface) > 0


class TestExposedFraction:
    def test_isolated_sphere_fraction_one(self):
        mol = sample_surface(_sphere(), subdivisions=1)
        assert exposed_fraction(mol) == pytest.approx(1.0, rel=1e-9)

    def test_protein_fraction_realistic(self, protein_small):
        frac = exposed_fraction(protein_small)
        assert 0.03 < frac < 0.6  # folded proteins bury most sphere area
