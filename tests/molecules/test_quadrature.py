"""Dunavant quadrature: weight normalisation and polynomial exactness."""

import numpy as np
import pytest

from repro.molecules.quadrature import (
    dunavant_rule,
    triangle_normals,
    triangle_quadrature,
)


def _integrate_monomial(degree_rule, px, py):
    """Integrate x^px · y^py over the reference triangle with the rule
    and compare to the exact value px!·py!/(px+py+2)!."""
    bary, w = dunavant_rule(degree_rule)
    ref = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    pts = bary @ ref
    approx = 0.5 * np.sum(w * pts[:, 0] ** px * pts[:, 1] ** py)
    from math import factorial
    exact = (factorial(px) * factorial(py)
             / factorial(px + py + 2))
    return approx, exact


class TestDunavantRules:
    @pytest.mark.parametrize("degree,npts", [(1, 1), (2, 3), (3, 4),
                                             (4, 6), (5, 7)])
    def test_point_counts_and_weight_sum(self, degree, npts):
        bary, w = dunavant_rule(degree)
        assert len(bary) == npts
        assert w.sum() == pytest.approx(1.0)
        assert np.allclose(bary.sum(axis=1), 1.0)

    @pytest.mark.parametrize("degree", [1, 2, 3, 4, 5])
    def test_polynomial_exactness(self, degree):
        for px in range(degree + 1):
            for py in range(degree + 1 - px):
                approx, exact = _integrate_monomial(degree, px, py)
                assert approx == pytest.approx(exact, abs=1e-12), (px, py)

    def test_degree_clamp_and_validation(self):
        b5, w5 = dunavant_rule(5)
        b9, w9 = dunavant_rule(9)
        assert np.array_equal(b5, b9) and np.array_equal(w5, w9)
        with pytest.raises(ValueError):
            dunavant_rule(0)


class TestTriangleQuadrature:
    def test_weights_sum_to_area(self):
        tri = np.array([[[0.0, 0, 0], [2.0, 0, 0], [0.0, 3.0, 0]]])
        pts, w = triangle_quadrature(tri, degree=3)
        assert w.sum() == pytest.approx(3.0)  # area = 0.5·2·3
        assert pts.shape == (4, 3)

    def test_batch_shapes(self):
        rng = np.random.default_rng(0)
        tris = rng.normal(size=(5, 3, 3))
        pts, w = triangle_quadrature(tris, degree=2)
        assert pts.shape == (15, 3)
        assert w.shape == (15,)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            triangle_quadrature(np.zeros((3, 3)))


class TestTriangleNormals:
    def test_unit_and_right_handed(self):
        tri = np.array([[[0.0, 0, 0], [1.0, 0, 0], [0.0, 1.0, 0]]])
        n = triangle_normals(tri)
        assert np.allclose(n, [[0.0, 0.0, 1.0]])

    def test_degenerate_raises(self):
        tri = np.zeros((1, 3, 3))
        with pytest.raises(ValueError):
            triangle_normals(tri)
