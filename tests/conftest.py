"""Shared fixtures: small cached molecules so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.molecules import sample_surface, synthetic_protein
from repro.molecules.molecule import Molecule


@pytest.fixture(scope="session")
def protein_small() -> Molecule:
    """~400-atom protein with surface — the workhorse test molecule."""
    return synthetic_protein(400, seed=1)


@pytest.fixture(scope="session")
def protein_medium() -> Molecule:
    """~1200-atom protein with surface."""
    return synthetic_protein(1200, seed=2)


@pytest.fixture(scope="session")
def single_atom() -> Molecule:
    """One charged sphere with a high-resolution surface (the analytic
    test case: Born radius must equal the sphere radius)."""
    mol = Molecule(np.zeros((1, 3)), np.array([1.0]), np.array([2.0]),
                   name="single")
    return sample_surface(mol, subdivisions=3, degree=2)


@pytest.fixture(scope="session")
def two_atoms() -> Molecule:
    """Two disjoint charged spheres (analytic pair energy check)."""
    mol = Molecule(np.array([[0.0, 0.0, 0.0], [8.0, 0.0, 0.0]]),
                   np.array([1.0, -1.0]),
                   np.array([1.5, 2.0]), name="pair")
    return sample_surface(mol, subdivisions=3, degree=2)


@pytest.fixture(scope="session")
def default_params() -> ApproxParams:
    return ApproxParams()


@pytest.fixture(scope="session")
def tight_params() -> ApproxParams:
    """ε small enough that octree results coincide with naive."""
    return ApproxParams(eps_born=0.05, eps_epol=0.05)


@pytest.fixture()
def lock_witness():
    """Install a :class:`repro.obs.lockwitness.LockWitness` around the
    test: ``named_lock``/``named_condition`` objects created inside it
    are wrapped, and teardown asserts the witnessed acquisition-order
    graph is acyclic (raising ``LockOrderError`` fails the test)."""
    from repro.obs import lockwitness

    witness = lockwitness.install(lockwitness.LockWitness())
    try:
        yield witness
    finally:
        lockwitness.uninstall()
        witness.assert_acyclic()
