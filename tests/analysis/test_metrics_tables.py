"""Analysis helpers: metrics and table rendering."""

import pytest

from repro.analysis.metrics import (
    mean_std,
    min_max_over_runs,
    percent_error,
    relative_error,
    speedup,
)
from repro.analysis.tables import Table, render_series


class TestMetrics:
    def test_relative_and_percent(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert percent_error(9.0, 10.0) == pytest.approx(-10.0)
        assert percent_error(-1.47e6, -1.48e6) == pytest.approx(
            100 * (0.01e6) / 1.48e6, rel=1e-6)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_min_max_over_runs(self):
        values = {0: 3.0, 1: 1.0, 2: 2.0}
        lo, hi = min_max_over_runs(lambda s: values[s], n_runs=3)
        assert (lo, hi) == (1.0, 3.0)

    def test_mean_std(self):
        m, s = mean_std([1.0, 3.0])
        assert m == pytest.approx(2.0)
        assert s == pytest.approx(1.0)


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "bb"], title="T")
        t.add_row(1, 2.5)
        t.add_row("OOM", 1e7)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_wrong_arity_rejected(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_float_formatting(self):
        t = Table(["x"])
        t.add_row(0.000001)
        assert "e-06" in t.render()


class TestSeries:
    def test_render(self):
        out = render_series("spd", [12, 24], [1.0, 1.9],
                            xlabel="cores", ylabel="x")
        assert "spd" in out and "12" in out and "1.9" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("s", [1], [1, 2])
