"""Smoke tests of the per-figure experiment runners at tiny sizes.

The full-size versions run under ``benchmarks/``; here we only verify
that each runner executes, returns coherent structures, and renders.
"""


from repro.analysis import experiments as ex


TINY = [400, 800]


class TestStaticTables:
    def test_table1(self):
        assert "24 GB" in ex.table1_machine()

    def test_table2(self):
        text = ex.table2_packages()
        assert "OCT_MPI" in text and "Tinker" in text


class TestFigureRunnersTiny:
    def test_fig7(self):
        rows, text = ex.fig7_octree_variants(sizes=TINY)
        assert len(rows) == 2
        assert all(r["OCT_MPI"] > 0 for r in rows)
        assert "Fig 7" in text

    def test_fig8(self):
        rows, text = ex.fig8_packages(sizes=TINY)
        assert all(r["Amber"] > 0 for r in rows)
        assert "speedup" in text

    def test_fig9(self):
        rows, text = ex.fig9_energy_values(sizes=TINY)
        for r in rows:
            assert r["Naive"] < 0
            assert abs(r["OCT"] - r["Naive"]) / abs(r["Naive"]) < 0.02

    def test_fig10(self):
        rows, text = ex.fig10_epsilon_sweep(sizes=TINY,
                                            eps_values=(0.3, 0.9))
        assert rows[0]["eps"] == 0.3
        assert rows[-1]["err_avg"] >= 0.0

    def test_fig5_fig6_small_capsid(self):
        rows, text = ex.fig5_speedup(capsid_atoms=4000,
                                     cores=(12, 24, 48))
        assert rows[-1].mpi_seconds < rows[0].mpi_seconds
        out, text6 = ex.fig6_minmax(capsid_atoms=4000, cores=(12, 48),
                                    n_runs=4)
        for c in (12, 48):
            lo, hi = out[c]["mpi"]
            assert lo <= hi

    def test_fig11_small_capsid(self):
        rows, text = ex.fig11_cmv_table(capsid_atoms=4000)
        names = [r["program"] for r in rows]
        assert names == ["OCT_CILK", "Amber", "OCT_MPI+CILK", "OCT_MPI"]
        oct_mpi = rows[-1]
        assert abs(oct_mpi["pct_diff"]) < 1.5


def test_suite_sizes_respects_cap():
    sizes = ex.suite_sizes(max_size=2000)
    assert max(sizes) <= 2000
    assert sizes == sorted(sizes)
