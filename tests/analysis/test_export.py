"""CSV export and report generation tests."""

import csv
from dataclasses import dataclass

import pytest

from repro.analysis.export import generate_report, write_csv


@dataclass
class Row:
    a: int
    b: float


class TestWriteCsv:
    def test_dict_rows(self, tmp_path):
        path = write_csv([{"x": 1, "y": None}, {"x": 2, "y": 3.5}],
                         tmp_path / "t.csv")
        rows = list(csv.reader(open(path)))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1", "OOM"]
        assert rows[2] == ["2", "3.5"]

    def test_dataclass_rows(self, tmp_path):
        path = write_csv([Row(1, 2.0)], tmp_path / "d.csv")
        rows = list(csv.reader(open(path)))
        assert rows == [["a", "b"], ["1", "2.0"]]

    def test_column_selection(self, tmp_path):
        path = write_csv([{"x": 1, "y": 2}], tmp_path / "c.csv",
                         columns=["y"])
        rows = list(csv.reader(open(path)))
        assert rows == [["y"], ["2"]]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "e.csv")

    def test_bad_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            write_csv([object()], tmp_path / "b.csv")


class TestGenerateReport:
    def test_tiny_report(self, tmp_path):
        report = generate_report(tmp_path / "rep",
                                 suite_sizes=[400],
                                 capsid_atoms=2500,
                                 cores=(12, 24), n_runs=2)
        assert report.exists()
        text = report.read_text()
        for section in ("Fig 5", "Fig 7", "Fig 9", "Fig 11"):
            assert section in text
        csvs = list((tmp_path / "rep").glob("*.csv"))
        assert len(csvs) == 7
