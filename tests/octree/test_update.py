"""Dynamic octree maintenance tests (refit vs rebuild)."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.born_octree import born_radii_octree
from repro.molecules.molecule import Molecule
from repro.octree.build import build_octree
from repro.octree.update import refit, update_octree


def _cloud(n=400, seed=0):
    return np.random.default_rng(seed).normal(scale=10, size=(n, 3))


def _check_enclosing(tree):
    for i in range(tree.nnodes):
        sl = tree.slice_of(i)
        d = np.linalg.norm(tree.points[sl] - tree.center[i], axis=1)
        assert d.max() <= tree.radius[i] + 1e-9, i


class TestRefit:
    def test_identity_motion_keeps_geometry(self):
        pts = _cloud()
        tree = build_octree(pts, leaf_size=16)
        same = refit(tree, pts)
        assert np.allclose(same.points, tree.points)
        assert np.allclose(same.center, tree.center)
        # Conservative internal radii may only grow.
        assert np.all(same.radius >= tree.radius - 1e-9)

    def test_radii_still_enclose_after_motion(self):
        pts = _cloud()
        tree = build_octree(pts, leaf_size=16)
        rng = np.random.default_rng(1)
        moved = pts + rng.normal(scale=0.5, size=pts.shape)
        out = refit(tree, moved)
        _check_enclosing(out)

    def test_topology_shared(self):
        pts = _cloud()
        tree = build_octree(pts, leaf_size=16)
        out = refit(tree, pts + 0.1)
        assert out.start is tree.start
        assert out.children is tree.children
        assert out.perm is tree.perm

    def test_shape_validation(self):
        tree = build_octree(_cloud(), leaf_size=16)
        with pytest.raises(ValueError):
            refit(tree, np.zeros((3, 3)))


class TestUpdateDecision:
    def test_small_motion_refits(self):
        pts = _cloud()
        tree = build_octree(pts, leaf_size=16)
        moved = pts + 0.05
        out, stats = update_octree(tree, moved)
        assert not stats.rebuilt
        assert stats.max_displacement == pytest.approx(
            np.sqrt(3) * 0.05, rel=1e-6)
        _check_enclosing(out)

    def test_large_motion_rebuilds(self):
        pts = _cloud()
        tree = build_octree(pts, leaf_size=16)
        rng = np.random.default_rng(2)
        scrambled = rng.normal(scale=10, size=pts.shape)  # total reshuffle
        out, stats = update_octree(tree, scrambled)
        assert stats.rebuilt
        assert stats.radius_inflation > 1.5
        _check_enclosing(out)

    def test_threshold_validation(self):
        tree = build_octree(_cloud(), leaf_size=16)
        with pytest.raises(ValueError):
            update_octree(tree, tree.scatter_to_original(tree.points),
                          rebuild_threshold=1.0)


class TestSolverOnRefitTree:
    def test_born_radii_stay_accurate(self, protein_small):
        """An MD-like jiggle: the refit tree's results stay within the
        ε envelope of the naive reference on the *moved* geometry."""
        params = ApproxParams()
        base = born_radii_octree(protein_small, params)
        rng = np.random.default_rng(3)
        moved_pos = protein_small.positions + rng.normal(
            scale=0.1, size=protein_small.positions.shape)
        surf = protein_small.require_surface()
        moved = Molecule(moved_pos, protein_small.charges,
                         protein_small.radii, surface=surf)

        refit_tree = refit(base.atoms_tree, moved_pos)
        got = born_radii_octree(moved, params, atoms_tree=refit_tree,
                                q_tree=base.qpoints_tree).radii
        ref = born_radii_naive_r6(moved)
        assert np.mean(np.abs(got - ref) / ref) < 0.02
