"""Octree statistics tests."""

import numpy as np

from repro.octree import build_octree, octree_stats


def test_stats_fields():
    pts = np.random.default_rng(0).normal(size=(400, 3))
    tree = build_octree(pts, leaf_size=16)
    s = octree_stats(tree)
    assert s.npoints == 400
    assert s.nleaves == len(tree.leaves)
    assert s.nnodes == tree.nnodes
    assert s.max_leaf_occupancy <= 16
    assert 0 < s.mean_leaf_occupancy <= s.max_leaf_occupancy
    assert s.nbytes == tree.nbytes()
    assert s.bytes_per_point > 0


def test_bytes_per_point_stays_bounded():
    """Linear-space witness: bytes/point roughly constant with size."""
    rng = np.random.default_rng(1)
    bpp = []
    for n in (500, 2000, 8000):
        tree = build_octree(rng.normal(size=(n, 3)), leaf_size=32)
        bpp.append(octree_stats(tree).bytes_per_point)
    assert max(bpp) < 3.0 * min(bpp)
