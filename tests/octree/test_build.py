"""Octree construction invariants, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.molecules.transform import RigidTransform
from repro.octree.build import build_octree


def _random_points(n, seed=0, scale=10.0):
    return np.random.default_rng(seed).normal(scale=scale, size=(n, 3))


def _check_invariants(tree, points, leaf_size):
    n = len(points)
    # Permutation is a bijection reproducing the sorted points.
    assert sorted(tree.perm.tolist()) == list(range(n))
    assert np.array_equal(tree.points, points[tree.perm])
    # Root covers everything.
    assert tree.start[0] == 0 and tree.end[0] == n
    # Children partition their parent's range exactly.
    for i in range(tree.nnodes):
        ch = tree.child_ids(i)
        if len(ch):
            assert not tree.is_leaf[i]
            assert tree.start[ch].min() == tree.start[i]
            assert tree.end[ch].max() == tree.end[i]
            assert (tree.end[ch] - tree.start[ch]).sum() == tree.count(i)
            assert np.all(tree.depth[ch] == tree.depth[i] + 1)
            assert np.all(tree.parent[ch] == i)
        else:
            assert tree.is_leaf[i]
    # Leaves tile [0, n) in order.
    starts = tree.start[tree.leaves]
    ends = tree.end[tree.leaves]
    assert starts[0] == 0 and ends[-1] == n
    assert np.all(starts[1:] == ends[:-1])
    # Leaf occupancy bound (unless the depth cap forced a big leaf).
    leaf_counts = ends - starts
    deep = tree.depth[tree.leaves] >= 21
    assert np.all((leaf_counts <= leaf_size) | deep)
    # Enclosing balls really enclose.
    for i in range(tree.nnodes):
        sl = tree.slice_of(i)
        d = np.linalg.norm(tree.points[sl] - tree.center[i], axis=1)
        assert d.max() <= tree.radius[i] + 1e-9


class TestBuild:
    def test_invariants_random_cloud(self):
        pts = _random_points(500, seed=1)
        tree = build_octree(pts, leaf_size=16)
        _check_invariants(tree, pts, 16)

    def test_single_point(self):
        tree = build_octree(np.zeros((1, 3)))
        assert tree.nnodes == 1
        assert tree.is_leaf[0]
        assert tree.radius[0] == 0.0

    def test_coincident_points(self):
        pts = np.zeros((100, 3))
        tree = build_octree(pts, leaf_size=8)
        # Can't split identical points: one (deep) leaf holds them all.
        leaf_counts = tree.end[tree.leaves] - tree.start[tree.leaves]
        assert leaf_counts.max() == 100

    def test_leaf_size_one(self):
        pts = _random_points(50, seed=2)
        tree = build_octree(pts, leaf_size=1)
        _check_invariants(tree, pts, 1)

    def test_parents_precede_children(self):
        tree = build_octree(_random_points(300, seed=3), leaf_size=8)
        assert np.all(tree.parent[1:] < np.arange(1, tree.nnodes))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_octree(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            build_octree(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            build_octree(np.zeros((4, 3)), leaf_size=0)
        with pytest.raises(ValueError):
            build_octree(np.zeros((4, 3)), max_depth=0)

    @given(st.integers(2, 200), st.integers(0, 10_000),
           st.sampled_from([1, 4, 16, 64]))
    @settings(max_examples=25, deadline=None)
    def test_invariants_property(self, n, seed, leaf_size):
        pts = _random_points(n, seed=seed, scale=3.0)
        tree = build_octree(pts, leaf_size=leaf_size)
        _check_invariants(tree, pts, leaf_size)


class TestGatherScatter:
    def test_roundtrip(self):
        pts = _random_points(120, seed=4)
        tree = build_octree(pts, leaf_size=8)
        values = np.arange(120, dtype=float)
        assert np.array_equal(
            tree.scatter_to_original(tree.gather_sorted(values)), values)


class TestTransformed:
    def test_topology_shared_geometry_moved(self):
        pts = _random_points(200, seed=5)
        tree = build_octree(pts, leaf_size=8)
        t = RigidTransform.random(seed=9)
        moved = tree.transformed(t)
        assert moved.nnodes == tree.nnodes
        assert moved.start is tree.start          # shared topology
        assert np.allclose(moved.points, t.apply(tree.points))
        assert np.allclose(moved.center, t.apply(tree.center))
        assert np.array_equal(moved.radius, tree.radius)
        # Enclosing balls still valid after the rigid motion.
        for i in range(0, moved.nnodes, 7):
            sl = moved.slice_of(i)
            d = np.linalg.norm(moved.points[sl] - moved.center[i], axis=1)
            assert d.max() <= moved.radius[i] + 1e-9


def test_nbytes_linear_in_points():
    small = build_octree(_random_points(200, seed=6), leaf_size=16)
    big = build_octree(_random_points(2000, seed=6), leaf_size=16)
    ratio = big.nbytes() / small.nbytes()
    assert 5 < ratio < 20  # ~linear growth, no cutoff dependence
