"""Morton-code tests: roundtrips, ordering, quantisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import morton


class TestBitTwiddling:
    def test_roundtrip_exhaustive_small(self):
        g = np.arange(64, dtype=np.uint64)
        grid = np.stack([g, g[::-1], (g * 7) % 64], axis=1)
        assert np.array_equal(morton.morton_decode(
            morton.morton_encode(grid)), grid)

    @given(st.integers(0, 2 ** 21 - 1), st.integers(0, 2 ** 21 - 1),
           st.integers(0, 2 ** 21 - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, x, y, z):
        grid = np.array([[x, y, z]], dtype=np.uint64)
        assert np.array_equal(morton.morton_decode(
            morton.morton_encode(grid)), grid)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton.morton_encode(np.array([[2 ** 21, 0, 0]],
                                          dtype=np.uint64))

    def test_axis_interleaving(self):
        # x occupies bit 0, y bit 1, z bit 2.
        assert morton.morton_encode(
            np.array([[1, 0, 0]], dtype=np.uint64))[0] == 1
        assert morton.morton_encode(
            np.array([[0, 1, 0]], dtype=np.uint64))[0] == 2
        assert morton.morton_encode(
            np.array([[0, 0, 1]], dtype=np.uint64))[0] == 4


class TestQuantize:
    def test_corners(self):
        pts = np.array([[0.0, 0, 0], [1.0, 1.0, 1.0]])
        grid = morton.quantize(pts, np.zeros(3), 1.0)
        assert np.array_equal(grid[0], [0, 0, 0])
        assert np.array_equal(grid[1],
                              [morton.GRID_SIZE - 1] * 3)

    def test_bad_edge(self):
        with pytest.raises(ValueError):
            morton.quantize(np.zeros((1, 3)), np.zeros(3), 0.0)

    def test_locality(self):
        """Nearby points get nearby codes more often than far points —
        the cache-friendliness property, checked statistically."""
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(500, 3))
        origin, edge = morton.bounding_cube(pts)
        codes = morton.morton_encode(morton.quantize(pts, origin, edge))
        order = np.argsort(codes)
        sorted_pts = pts[order]
        adjacent = np.linalg.norm(np.diff(sorted_pts, axis=0),
                                  axis=1).mean()
        random_pairs = np.linalg.norm(
            sorted_pts[rng.permutation(499)] - sorted_pts[:-1],
            axis=1).mean()
        assert adjacent < 0.5 * random_pairs


class TestOctantAtDepth:
    def test_root_octant(self):
        code = morton.morton_encode(
            np.array([[morton.GRID_SIZE - 1, 0, 0]], dtype=np.uint64))
        # x high bit set at depth 0 → octant bit 0.
        assert morton.octant_at_depth(code, 0)[0] == 1

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            morton.octant_at_depth(np.array([0], dtype=np.uint64), 21)


def test_bounding_cube_contains_points():
    rng = np.random.default_rng(5)
    pts = rng.normal(scale=50, size=(100, 3))
    origin, edge = morton.bounding_cube(pts)
    assert np.all(pts >= origin)
    assert np.all(pts <= origin + edge)


def test_bounding_cube_degenerate():
    origin, edge = morton.bounding_cube(np.zeros((3, 3)))
    assert edge > 0
