"""Checkpoint files: round-trip fidelity, damage detection, atomicity."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.guard.checkpoint import (
    SCHEMA_VERSION,
    CheckpointStore,
    molecule_fingerprint,
)
from repro.guard.errors import CheckpointError
from repro.molecules import synthetic_protein


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


ARRAYS = {
    "radii": np.array([1.5, 2.25, 3.125]),
    "energy": np.asarray(-123.456789012345678),
    "grid": np.arange(12, dtype=np.float64).reshape(3, 4),
}


class TestRoundTrip:
    def test_arrays_bitwise_and_meta_exact(self, store):
        meta = {"rung": "primary", "eps_born": 0.3, "step": 7}
        store.save("born", ARRAYS, meta)
        ck = store.load("born")
        assert ck.kind == "born" and ck.schema == SCHEMA_VERSION
        assert ck.meta == meta
        assert set(ck.arrays) == set(ARRAYS)
        for k, v in ARRAYS.items():
            got = ck.arrays[k]
            assert got.dtype == np.asarray(v).dtype
            assert got.shape == np.asarray(v).shape
            assert np.array_equal(got, v)  # bitwise: float64 round-trips

    def test_save_overwrites_atomically(self, store):
        store.save("born", {"radii": np.array([1.0])})
        store.save("born", {"radii": np.array([2.0])})
        assert store.load("born").arrays["radii"][0] == 2.0
        # No temporary turds left next to the checkpoint.
        names = [p.name for p in store.directory.iterdir()]
        assert names == ["born.ckpt"]

    def test_try_load_missing_is_none(self, store):
        assert store.try_load("epol") is None
        assert not store.has("epol")

    def test_delete_is_idempotent(self, store):
        store.save("born", {"radii": np.array([1.0])})
        store.delete("born")
        store.delete("born")
        assert not store.has("born")

    def test_load_missing_raises(self, store):
        with pytest.raises(CheckpointError):
            store.load("born")

    def test_kind_validation_rejects_traversal(self, store):
        for kind in ("", "a/b", "..", "x.y"):
            with pytest.raises(CheckpointError):
                store.path_for(kind)


class TestDamageDetection:
    def _write(self, store):
        return store.save("born", ARRAYS, {"rung": "primary"})

    def test_flipped_payload_byte_fails_checksum(self, store):
        path = self._write(store)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            store.load("born")

    def test_truncated_payload_detected(self, store):
        path = self._write(store)
        blob = path.read_bytes()
        path.write_bytes(blob[:-32])
        with pytest.raises(CheckpointError, match="truncated"):
            store.load("born")

    def test_bad_magic_detected(self, store):
        path = self._write(store)
        path.write_bytes(b"NOT-A-CKPT" + path.read_bytes())
        with pytest.raises(CheckpointError, match="magic"):
            store.load("born")

    def test_unsupported_schema_refused(self, store):
        path = self._write(store)
        blob = path.read_bytes()
        assert blob.count(b'"schema": 1') == 1
        path.write_bytes(blob.replace(b'"schema": 1', b'"schema": 9'))
        with pytest.raises(CheckpointError, match="schema 9"):
            store.load("born")

    def test_garbage_header_detected(self, store):
        path = self._write(store)
        blob = path.read_bytes()
        magic_len = blob.find(b"\n") + 1
        path.write_bytes(blob[:magic_len] + b"{broken json\n"
                         + blob[magic_len:])
        with pytest.raises(CheckpointError, match="header"):
            store.load("born")


class TestFingerprint:
    def test_binds_molecule_and_config(self):
        a = synthetic_protein(60, seed=1)
        b = synthetic_protein(60, seed=2)
        p = ApproxParams()
        fp = molecule_fingerprint(a, p, "octree")
        assert fp == molecule_fingerprint(a, p, "octree")
        assert fp != molecule_fingerprint(b, p, "octree")
        assert fp != molecule_fingerprint(a, p, "naive")
        assert fp != molecule_fingerprint(a, ApproxParams(eps_born=0.1),
                                          "octree")

    def test_mismatched_fingerprint_refused(self, tmp_path):
        writer = CheckpointStore(tmp_path, fingerprint="aaa")
        writer.save("born", {"radii": np.array([1.0])})
        reader = CheckpointStore(tmp_path, fingerprint="bbb")
        with pytest.raises(CheckpointError, match="different"):
            reader.load("born")

    def test_unbound_reader_accepts(self, tmp_path):
        writer = CheckpointStore(tmp_path, fingerprint="aaa")
        writer.save("born", {"radii": np.array([1.0])})
        assert CheckpointStore(tmp_path).load("born").fingerprint == "aaa"
