"""GuardedSolver: clean-path fidelity, the degradation ladder, resume."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core.solver import PolarizationSolver
from repro.faults import DataCorruption, FaultPlan
from repro.guard import GuardedSolver, GuardPolicy
from repro.guard.errors import CheckpointError, NumericalGuardError
from repro.molecules import synthetic_protein


@pytest.fixture(scope="module")
def mol():
    return synthetic_protein(150, seed=9)


@pytest.fixture(scope="module")
def params():
    return ApproxParams()


def actions(report):
    return [e.action for e in report.events]


class TestCleanPath:
    def test_matches_plain_solver_bitwise(self, mol, params):
        plain = PolarizationSolver(mol, params)
        g = GuardedSolver(mol, params)
        report = g.report()
        assert report.energy == plain.energy()
        assert np.array_equal(report.born_radii, plain.born_radii())
        assert report.rung == "primary" and report.attempts == 1
        assert report.degradations == 0
        assert report.watchdog is not None and report.watchdog.ok

    def test_surface_sampled_when_missing(self, params):
        bare = synthetic_protein(60, seed=5, with_surface=False)
        g = GuardedSolver(bare, params)
        assert g.molecule.surface is not None
        assert np.isfinite(g.energy())

    def test_invalid_method_rejected(self, mol, params):
        with pytest.raises(ValueError):
            GuardedSolver(mol, params, method="magic")


class TestLadder:
    def test_transient_nan_cleared_by_retry(self, mol, params):
        plan = FaultPlan([DataCorruption("born.radii", kind="nan",
                                         fraction=0.1)], seed=11)
        g = GuardedSolver(mol, params, fault_plan=plan)
        report = g.report()
        # One breach, one retry, then a clean rung — and because the
        # retry reruns identical arithmetic, the answer is bitwise
        # identical to an unfaulted run.
        assert report.rung == "retry-1"
        assert "sentinel-breach" in actions(report)
        assert report.degradations == 1
        assert report.energy == GuardedSolver(mol, params).energy()

    def test_scale_corruption_caught_by_watchdog(self, mol, params):
        plan = FaultPlan([DataCorruption("born.radii", kind="scale",
                                         fraction=0.5, factor=8.0)],
                         seed=11)
        g = GuardedSolver(mol, params, fault_plan=plan)
        report = g.report()
        assert "watchdog-breach" in actions(report)
        assert report.degradations >= 1

    def test_persistent_corruption_falls_back_to_naive(self, mol, params):
        plan = FaultPlan([DataCorruption("born.radii", kind="nan",
                                         fraction=0.1, persistent=True)],
                         seed=11)
        g = GuardedSolver(mol, params, fault_plan=plan)
        report = g.report()
        assert report.rung == "naive" and report.method == "naive"
        assert "fallback-naive" in actions(report)
        exact = PolarizationSolver(mol, params, method="naive").energy()
        assert report.energy == exact

    def test_ladder_exhaustion_reraises_typed(self, mol, params):
        plan = FaultPlan([DataCorruption("born.radii", kind="nan",
                                         fraction=0.1, persistent=True)],
                         seed=11)
        policy = GuardPolicy(allow_naive_fallback=False)
        g = GuardedSolver(mol, params, policy=policy, fault_plan=plan)
        with pytest.raises(NumericalGuardError):
            g.energy()
        assert g.degradations >= 2  # retry + tighten were both tried

    def test_energy_nan_caught_by_sentinel(self, mol, params):
        plan = FaultPlan([DataCorruption("epol.energy", kind="nan",
                                         fraction=1.0)], seed=11)
        report = GuardedSolver(mol, params, fault_plan=plan).report()
        assert np.isfinite(report.energy)
        assert "sentinel-breach" in actions(report)

    def test_corruption_events_recorded(self, mol, params):
        plan = FaultPlan([DataCorruption("born.radii", kind="nan",
                                         fraction=0.1)], seed=11)
        g = GuardedSolver(mol, params, fault_plan=plan)
        g.report()
        assert g.injected_faults == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            GuardPolicy(retries=-1)
        with pytest.raises(ValueError):
            GuardPolicy(tighten_factor=1.5)
        with pytest.raises(ValueError):
            GuardPolicy(watchdog_samples=0)


class TestResume:
    def test_resume_after_full_solve_is_bitwise(self, mol, params,
                                                tmp_path):
        d = tmp_path / "ck"
        first = GuardedSolver(mol, params, checkpoint=d).report()
        resumed = GuardedSolver(mol, params, checkpoint=d,
                                resume=True).report()
        assert resumed.attempts == 0  # nothing recomputed
        assert resumed.energy == first.energy
        assert np.array_equal(resumed.born_radii, first.born_radii)
        assert "checkpoint-load" in actions(resumed)

    def test_resume_from_born_snapshot_is_bitwise(self, mol, params,
                                                  tmp_path):
        d = tmp_path / "ck"
        interrupted = GuardedSolver(mol, params, checkpoint=d)
        interrupted.born_phase_only()  # simulated interruption
        store = interrupted.checkpoint
        assert store.has("born") and not store.has("epol")
        resumed = GuardedSolver(mol, params, checkpoint=d,
                                resume=True).report()
        fresh = GuardedSolver(mol, params).report()
        assert resumed.energy == fresh.energy
        assert np.array_equal(resumed.born_radii, fresh.born_radii)

    def test_checkpoints_written_per_phase(self, mol, params, tmp_path):
        d = tmp_path / "ck"
        g = GuardedSolver(mol, params, checkpoint=d)
        g.report()
        assert g.checkpoint.has("born") and g.checkpoint.has("epol")

    def test_wrong_molecule_checkpoint_refused(self, mol, params,
                                               tmp_path):
        d = tmp_path / "ck"
        GuardedSolver(mol, params, checkpoint=d).report()
        other = synthetic_protein(80, seed=2)
        with pytest.raises(CheckpointError, match="different"):
            GuardedSolver(other, params, checkpoint=d,
                          resume=True).report()

    def test_without_resume_flag_checkpoints_are_ignored(self, mol,
                                                         params,
                                                         tmp_path):
        d = tmp_path / "ck"
        first = GuardedSolver(mol, params, checkpoint=d).report()
        again = GuardedSolver(mol, params, checkpoint=d).report()
        assert again.attempts == 1  # recomputed, not loaded
        assert again.energy == first.energy
