"""The typed diagnostic hierarchy: bases, context fields, rendering."""

import pytest

from repro.guard.errors import (
    CheckpointError,
    DegenerateGeometryError,
    DiagnosticError,
    MoleculeFormatError,
    NumericalGuardError,
    WatchdogBreachError,
    format_indices,
)


class TestHierarchy:
    """Every class keeps its historical builtin base so pre-guard
    callers written against ValueError/RuntimeError keep working."""

    def test_value_error_compat(self):
        for cls in (MoleculeFormatError, DegenerateGeometryError,
                    NumericalGuardError, WatchdogBreachError):
            assert issubclass(cls, ValueError)
            assert issubclass(cls, DiagnosticError)

    def test_checkpoint_is_runtime_error(self):
        assert issubclass(CheckpointError, RuntimeError)
        assert issubclass(CheckpointError, DiagnosticError)
        assert not issubclass(CheckpointError, ValueError)

    def test_watchdog_is_numerical(self):
        assert issubclass(WatchdogBreachError, NumericalGuardError)

    def test_caught_as_value_error(self):
        with pytest.raises(ValueError):
            raise NumericalGuardError("boom", phase="epol")


class TestContext:
    def test_phase_and_indices_in_message(self):
        exc = NumericalGuardError("non-finite values", phase="born",
                                  indices=[3, 1, 4], hint="re-run")
        s = str(exc)
        assert "[born]" in s and "[3, 1, 4]" in s and "hint: re-run" in s
        assert exc.phase == "born"
        assert exc.indices == (3, 1, 4)

    def test_format_error_carries_line_and_field(self):
        exc = MoleculeFormatError("bad float", line=12, field="charge")
        assert exc.line == 12 and exc.field == "charge"
        assert "line 12" in str(exc) and "'charge'" in str(exc)

    def test_watchdog_carries_observed_and_tolerance(self):
        exc = WatchdogBreachError("disagrees", observed=0.5,
                                  tolerance=0.1)
        assert exc.observed == 0.5 and exc.tolerance == 0.1
        assert "5.000e-01" in str(exc)

    def test_checkpoint_carries_path(self):
        exc = CheckpointError("checksum mismatch", path="/tmp/x.ckpt")
        assert exc.path == "/tmp/x.ckpt"
        assert "/tmp/x.ckpt" in str(exc)


class TestFormatIndices:
    def test_empty(self):
        assert format_indices([]) == "[]"

    def test_short_list_verbatim(self):
        assert format_indices([1, 2, 3]) == "[1, 2, 3]"

    def test_long_list_truncated_with_total(self):
        out = format_indices(list(range(100)))
        assert out.startswith("[0, 1, 2, 3, 4, 5, 6, 7,")
        assert "… 100 total" in out
