"""Accuracy watchdog: exact spot-checks versus the tree pipeline."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.solver import PolarizationSolver
from repro.guard.errors import WatchdogBreachError
from repro.guard.watchdog import (
    born_tolerance,
    check_born_subset,
    exact_born_subset,
    sample_indices,
)
from repro.molecules import synthetic_protein


@pytest.fixture(scope="module")
def mol():
    return synthetic_protein(150, seed=9)


def test_sample_indices_seeded_and_sorted():
    a = sample_indices(100, seed=3, samples=8)
    b = sample_indices(100, seed=3, samples=8)
    c = sample_indices(100, seed=4, samples=8)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert np.array_equal(a, np.sort(a)) and len(set(a)) == 8


def test_sample_indices_clamped_to_natoms():
    assert len(sample_indices(3, seed=0, samples=8)) == 3


def test_exact_subset_matches_full_naive_kernel(mol):
    idx = sample_indices(mol.natoms, seed=1, samples=6)
    full = born_radii_naive_r6(mol)
    np.testing.assert_allclose(exact_born_subset(mol, idx), full[idx],
                               rtol=1e-12)


def test_tolerance_tracks_eps(mol):
    tight = born_tolerance(ApproxParams(eps_born=0.1))
    loose = born_tolerance(ApproxParams(eps_born=0.9))
    assert 0 < tight < loose


def test_octree_radii_pass_the_watchdog(mol):
    params = ApproxParams()
    radii = PolarizationSolver(mol, params).born_radii()
    report = check_born_subset(mol, radii, params, seed=0)
    assert report.ok and report.worst_rel <= report.tolerance
    assert len(report.indices) == 8


def test_corrupted_radii_breach(mol):
    params = ApproxParams()
    radii = PolarizationSolver(mol, params).born_radii().copy()
    idx = sample_indices(mol.natoms, seed=0)
    radii[idx[0]] *= 7.0  # finite but grossly wrong
    with pytest.raises(WatchdogBreachError) as ei:
        check_born_subset(mol, radii, params, seed=0)
    assert int(idx[0]) in ei.value.indices
    assert ei.value.observed > ei.value.tolerance


def test_corruption_off_the_sampled_subset_is_missed(mol):
    """The watchdog is a spot-check, not a proof: corrupting an atom
    outside the seeded subset must (by design) go unnoticed."""
    params = ApproxParams()
    radii = PolarizationSolver(mol, params).born_radii().copy()
    sampled = set(int(i) for i in sample_indices(mol.natoms, seed=0))
    victim = next(i for i in range(mol.natoms) if i not in sampled)
    radii[victim] *= 7.0
    assert check_born_subset(mol, radii, params, seed=0).ok
