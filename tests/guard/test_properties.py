"""Property tests: the guarded solver on degenerate / random inputs.

The contract under test: for any molecule the constructors accept, a
guarded solve either returns a finite energy or raises a typed
:class:`~repro.guard.errors.DiagnosticError` — it never hands back NaN.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ApproxParams
from repro.guard import GuardedSolver
from repro.guard.errors import DiagnosticError, MoleculeFormatError
from repro.molecules import sample_surface
from repro.molecules.molecule import Molecule

# Surface sampling dominates per-example cost; stay tiny and exact.
_SETTINGS = dict(max_examples=15, deadline=None)


def _solve(mol):
    mol = sample_surface(mol, subdivisions=0, degree=1)
    return GuardedSolver(mol, ApproxParams(), method="naive").energy()


@given(natoms=st.integers(1, 6), seed=st.integers(0, 10_000))
@settings(**_SETTINGS)
def test_random_molecule_finite_or_typed(natoms, seed):
    rng = np.random.default_rng(seed)
    mol = Molecule(rng.uniform(-8.0, 8.0, size=(natoms, 3)),
                   rng.uniform(-1.5, 1.5, size=natoms),
                   rng.uniform(0.8, 2.5, size=natoms), name="hyp")
    try:
        energy = _solve(mol)
    except DiagnosticError:
        return  # a typed refusal is an allowed outcome
    assert np.isfinite(energy)


@given(seed=st.integers(0, 10_000))
@settings(**_SETTINGS)
def test_coincident_atoms_refused_not_nan(seed):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-6.0, 6.0, size=(4, 3))
    pos[1] = pos[0]  # exact duplicate
    mol = Molecule(pos, rng.uniform(-1.0, 1.0, size=4),
                   rng.uniform(0.8, 2.0, size=4), name="dup")
    with pytest.raises(DiagnosticError):
        _solve(mol)


@given(seed=st.integers(0, 10_000))
@settings(**_SETTINGS)
def test_zero_charges_give_exactly_zero(seed):
    rng = np.random.default_rng(seed)
    mol = Molecule(rng.uniform(-8.0, 8.0, size=(3, 3)),
                   np.zeros(3), rng.uniform(0.8, 2.5, size=3),
                   name="neutral")
    try:
        energy = _solve(mol)
    except DiagnosticError:
        return  # random coordinates may still be degenerate
    assert energy == 0.0


@given(radius=st.floats(0.8, 4.0), charge=st.floats(-2.0, 2.0))
@settings(**_SETTINGS)
def test_single_atom_is_analytic(radius, charge):
    """One sphere: E = −τ/2 · q²/R (the Born ion), R = intrinsic."""
    mol = Molecule(np.zeros((1, 3)), np.array([charge]),
                   np.array([radius]), name="ion")
    mol = sample_surface(mol, subdivisions=2, degree=2)
    g = GuardedSolver(mol, ApproxParams(), method="naive")
    report = g.report()
    assert report.born_radii[0] == pytest.approx(radius, rel=5e-3)
    from repro.core.gb import energy_prefactor

    expected = energy_prefactor(g.tau) * charge ** 2 / radius
    assert report.energy == pytest.approx(expected, rel=1e-2)


@pytest.mark.filterwarnings("ignore:overflow:RuntimeWarning")
@given(scale=st.floats(2e6, 1e8), seed=st.integers(0, 1000))
@settings(**_SETTINGS)
def test_extreme_coordinates_finite_or_typed(scale, seed):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-1.0, 1.0, size=(3, 3)) * scale
    mol = Molecule(pos, rng.uniform(-1.0, 1.0, size=3),
                   rng.uniform(0.8, 2.0, size=3), name="far")
    try:
        energy = _solve(mol)
    except DiagnosticError:
        return
    assert np.isfinite(energy)


@given(n=st.integers(1, 4))
@settings(**_SETTINGS)
def test_nonpositive_radii_rejected_at_construction(n):
    pos = np.zeros((n, 3))
    pos[:, 0] = np.arange(n) * 5.0
    radii = np.full(n, 1.5)
    radii[-1] = 0.0
    with pytest.raises(MoleculeFormatError):
        Molecule(pos, np.ones(n), radii)
