"""Tests for the guard layer (errors, checks, watchdog, checkpoint,
GuardedSolver, MD restart)."""
