"""Preflight diagnostics and the runtime numerical sentinels."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.guard.checks import (
    check_born_radii,
    check_finite,
    check_positive,
    diagnose_molecule,
    preflight,
)
from repro.guard.errors import (
    DegenerateGeometryError,
    MoleculeFormatError,
    NumericalGuardError,
)
from repro.molecules import sample_surface, synthetic_protein
from repro.molecules.molecule import Molecule


def _codes(findings):
    return [d.code for d in findings]


def _mol(pos, q=None, r=None, **kw):
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    return Molecule(pos,
                    np.ones(n) if q is None else np.asarray(q, float),
                    np.full(n, 1.5) if r is None else np.asarray(r, float),
                    **kw)


class TestDiagnose:
    def test_healthy_molecule_has_no_errors(self):
        mol = synthetic_protein(120, seed=4)
        findings = diagnose_molecule(mol, ApproxParams())
        assert not [d for d in findings if d.severity == "error"]

    def test_nan_positions_flagged(self):
        mol = _mol([[0.0, 0.0, 0.0], [4.0, 0.0, 0.0]])
        mol.positions[1, 1] = np.nan
        findings = diagnose_molecule(mol)
        assert "GRD101" in _codes(findings)
        (d,) = [d for d in findings if d.code == "GRD101"]
        assert d.indices == (1,) and d.severity == "error"

    def test_nan_radii_flagged(self):
        mol = _mol([[0.0, 0.0, 0.0], [4.0, 0.0, 0.0]])
        mol.radii[0] = np.nan  # NaN passes the constructor's <= 0 check
        assert "GRD103" in _codes(diagnose_molecule(mol))

    def test_coincident_atoms_flagged(self):
        mol = _mol([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0], [5.0, 0.0, 0.0]])
        findings = diagnose_molecule(mol)
        (d,) = [d for d in findings if d.code == "GRD105"]
        assert d.indices == (0, 1)

    def test_extreme_coordinates_warn(self):
        mol = _mol([[0.0, 0.0, 0.0], [2.5e6, 0.0, 0.0]])
        (d,) = [d for d in diagnose_molecule(mol) if d.code == "GRD106"]
        assert d.severity == "warning" and d.indices == (1,)

    def test_zero_charges_warn(self):
        mol = _mol([[0.0, 0.0, 0.0], [6.0, 0.0, 0.0]], q=[0.0, 0.0])
        assert "GRD107" in _codes(diagnose_molecule(mol))

    def test_single_atom_noted(self):
        mol = _mol([[0.0, 0.0, 0.0]])
        assert "GRD108" in _codes(diagnose_molecule(mol))

    def test_missing_surface_noted(self):
        mol = _mol([[0.0, 0.0, 0.0], [6.0, 0.0, 0.0]])
        assert "GRD110" in _codes(diagnose_molecule(mol))

    def test_loose_eps_warns(self):
        mol = synthetic_protein(60, seed=4, with_surface=False)
        findings = diagnose_molecule(mol, ApproxParams(eps_born=5.0))
        assert "GRD120" in _codes(findings)

    def test_render_mentions_code_and_fix(self):
        mol = _mol([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        (d,) = [d for d in diagnose_molecule(mol) if d.code == "GRD105"]
        out = d.render()
        assert "GRD105" in out and "[fix:" in out


class TestPreflight:
    def test_healthy_molecule_passes(self):
        mol = synthetic_protein(120, seed=4)
        findings = preflight(mol, ApproxParams())
        assert not [d for d in findings if d.severity == "error"]

    def test_coincident_atoms_raise_geometry_error(self):
        mol = _mol([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        with pytest.raises(DegenerateGeometryError):
            preflight(mol)

    def test_nan_positions_raise_format_error(self):
        mol = _mol([[0.0, 0.0, 0.0], [4.0, 0.0, 0.0]])
        mol.positions[0, 0] = np.inf
        with pytest.raises(MoleculeFormatError):
            preflight(mol)

    def test_warnings_do_not_raise(self):
        mol = _mol([[0.0, 0.0, 0.0], [6.0, 0.0, 0.0]], q=[0.0, 0.0])
        findings = preflight(mol)
        assert "GRD107" in _codes(findings)


class TestSentinels:
    def test_check_finite_passes_clean(self):
        arr = np.arange(5.0)
        assert check_finite("born", "x", arr) is arr

    def test_check_finite_names_phase_and_indices(self):
        arr = np.array([1.0, np.nan, 3.0, np.inf])
        with pytest.raises(NumericalGuardError) as ei:
            check_finite("epol", "E_pol", arr)
        assert ei.value.phase == "epol"
        assert ei.value.indices == (1, 3)

    def test_check_positive_rejects_zero(self):
        with pytest.raises(NumericalGuardError) as ei:
            check_positive("born", "radii", np.array([1.0, 0.0]))
        assert ei.value.indices == (1,)

    def test_born_radii_floor(self):
        radii = np.array([2.0, 1.0])
        intrinsic = np.array([1.5, 1.5])
        with pytest.raises(NumericalGuardError) as ei:
            check_born_radii("born", radii, intrinsic=intrinsic)
        assert ei.value.indices == (1,)

    def test_born_radii_at_floor_passes(self):
        radii = np.array([1.5, 2.0])
        intrinsic = np.array([1.5, 1.5])
        check_born_radii("born", radii, intrinsic=intrinsic)


class TestSurfaceChecks:
    def test_singular_quadrature_point_is_an_error(self):
        mol = sample_surface(_mol([[0.0, 0.0, 0.0], [7.0, 0.0, 0.0]]))
        # Drop an atom centre exactly onto a quadrature point.
        mol.positions[1] = mol.surface.points[0]
        findings = diagnose_molecule(mol)
        assert "GRD113" in _codes(findings)
        with pytest.raises(DegenerateGeometryError):
            preflight(mol)
