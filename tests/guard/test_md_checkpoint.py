"""MD checkpoint/restart: an interrupted run must finish bitwise."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.guard.checkpoint import CheckpointStore
from repro.md import ImplicitSolventPotential, langevin
from repro.molecules import synthetic_protein

STEPS = 12
KW = dict(temperature=300.0, friction=5.0, dt=0.002, refresh_every=3,
          seed=17)


@pytest.fixture(scope="module")
def mol():
    return synthetic_protein(120, seed=21)


def _pot(mol):
    return ImplicitSolventPotential(mol, ApproxParams(), use_octree=False)


def test_interrupted_run_resumes_bitwise(mol, tmp_path):
    ref = langevin(_pot(mol), mol.positions, steps=STEPS, **KW)

    d = tmp_path / "md"
    # First half: run 6 of 12 steps, checkpointing every 3.
    langevin(_pot(mol), mol.positions, steps=STEPS // 2,
             checkpoint=d, checkpoint_every=3, **KW)
    store = CheckpointStore(d)
    assert store.has("md")
    assert int(store.load("md").meta["step"]) == STEPS // 2

    # Second half: a fresh potential object picks up the snapshot and
    # must land exactly where the uninterrupted run did.
    res = langevin(_pot(mol), mol.positions, steps=STEPS,
                   checkpoint=d, checkpoint_every=3, resume=True, **KW)
    assert np.array_equal(res.positions, ref.positions)
    assert np.array_equal(res.velocities, ref.velocities)
    assert res.energies == ref.energies
    assert res.temperatures == ref.temperatures


def test_resume_with_changed_settings_refused(mol, tmp_path):
    from repro.guard.errors import CheckpointError

    d = tmp_path / "md"
    langevin(_pot(mol), mol.positions, steps=6, checkpoint=d, **KW)
    other = dict(KW, seed=18)  # different trajectory → new fingerprint
    with pytest.raises(CheckpointError, match="different"):
        langevin(_pot(mol), mol.positions, steps=STEPS, checkpoint=d,
                 resume=True, **other)


def test_restore_born_radii_validates_shape(mol):
    pot = _pot(mol)
    with pytest.raises(ValueError):
        pot.restore_born_radii(np.ones(3))
