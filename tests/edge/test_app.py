"""EdgeApp middleware under an injected clock — no sockets, no sleeps.

Every behavior the HTTP surface promises (auth, body-size limits,
token-bucket rate limits, typed errors, job lifecycle, redacted
logging, deterministic ids) is pinned here byte-for-byte: the clock is
a mutable fake, ids derive from a seed, and the backend is the real
:class:`SolveService`, so nothing is mocked that matters.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.edge import (
    EdgeApp,
    RateLimiter,
    SECURITY_HEADERS,
    TenantConfig,
    TenantRegistry,
    body_digest,
    redact_headers,
)
from repro.serve import SolveService

ATOMS = 60  # tiny molecules: the app under test is the edge, not the solver


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_registry(**overrides) -> TenantRegistry:
    kw = dict(name="acme", token="acme-secret", rate_per_s=2.0,
              burst=2, max_body_bytes=256)
    kw.update(overrides)
    return TenantRegistry([TenantConfig(**kw),
                           TenantConfig(name="zed", token="zed-secret",
                                        rate_per_s=2.0, burst=2,
                                        max_body_bytes=256)])


@pytest.fixture()
def service():
    svc = SolveService(workers=1, queue_capacity=16)
    yield svc
    svc.close()


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def app(service, clock):
    tenants = make_registry()
    return EdgeApp(service, tenants, clock=clock, seed=7,
                   limiter=RateLimiter(clock=clock))


def post(app, path, doc, token="acme-secret", **kw):
    return app.handle("POST", path,
                      headers={"Authorization": f"Bearer {token}"},
                      body=json.dumps(doc).encode(), **kw)


def test_sync_solve_round_trip(app):
    resp = post(app, "/v1/solve", {"atoms": ATOMS, "seed": 1})
    assert resp.status == 200
    result = resp.json["result"]
    assert result["status"] in ("ok", "degraded")
    assert result["energy_hex"] == float(result["energy"]).hex()
    # Security headers ride on every response.
    for k, v in SECURITY_HEADERS.items():
        assert resp.headers[k] == v
    assert resp.headers["X-Request-Id"].startswith("req-")


def test_request_ids_are_seeded_and_deterministic(service, clock):
    ids = []
    for _ in range(2):
        app = EdgeApp(service, make_registry(), clock=clock, seed=7,
                      limiter=RateLimiter(clock=clock))
        r1 = app.handle("GET", "/healthz")
        r2 = app.handle("GET", "/healthz")
        ids.append((r1.headers["X-Request-Id"],
                    r2.headers["X-Request-Id"]))
    assert ids[0] == ids[1]
    assert ids[0][0] != ids[0][1]


def test_missing_token_is_typed_401(app):
    resp = app.handle("POST", "/v1/solve", body=b"{}")
    assert resp.status == 401
    err = resp.json["error"]
    assert err["code"] == "unauthorized"
    assert err["status"] == 401


@pytest.mark.parametrize("auth", [
    "Bearer wrong-token", "Basic acme-secret", "acme-secret", "Bearer ",
])
def test_bad_credentials_all_look_identical(app, auth):
    resp = app.handle("POST", "/v1/solve",
                      headers={"Authorization": auth}, body=b"{}")
    assert resp.status == 401
    # One message for every failure mode: the edge must not oracle
    # whether a token exists vs. is malformed.
    assert "missing or invalid" in resp.json["error"]["message"]


def test_unknown_route_404_and_wrong_method_405(app):
    assert app.handle("GET", "/v1/nope").status == 404
    resp = post(app, "/healthz", {})
    assert resp.status == 405
    assert resp.headers["Allow"] == "GET"
    assert resp.json["error"]["code"] == "method_not_allowed"


def test_malformed_json_is_typed_400(app):
    resp = app.handle("POST", "/v1/solve",
                      headers={"Authorization": "Bearer acme-secret"},
                      body=b"{not json")
    assert resp.status == 400
    err = resp.json["error"]
    assert err["code"] == "bad_request"
    assert "malformed JSON" in err["message"]
    assert err["hint"]


def test_unknown_fields_and_bad_values_are_400(app, clock):
    bad = [{"atoms": ATOMS, "bogus": 1},  # unknown field
           {"atoms": "many"},             # non-numeric
           {"atoms": 0},                  # out of range
           {"seed": 3},                   # atoms missing
           {"atoms": ATOMS, "tenant": "zed"}]  # token/body mismatch
    for doc in bad:
        clock.advance(0.5)  # refill the bucket: 400s still cost a token
        assert post(app, "/v1/solve", doc).status == 400


def test_oversize_body_is_typed_413(app):
    big = {"atoms": ATOMS, "idempotency_key": "x" * 300}
    resp = post(app, "/v1/solve", big)
    assert resp.status == 413
    err = resp.json["error"]
    assert err["code"] == "payload_too_large"
    assert "256" in err["message"]


def test_declared_length_triggers_413_without_full_body(app):
    """The transport may hand over a truncated body + the declared
    Content-Length; the limit judges the declared size."""
    resp = app.handle("POST", "/v1/solve",
                      headers={"Authorization": "Bearer acme-secret"},
                      body=b"x" * 100, declared_length=10_000)
    assert resp.status == 413


def test_rate_limit_boundary_and_retry_after(app, clock):
    # burst=2: two instant requests pass, the third is shed.
    assert post(app, "/v1/solve", {"atoms": ATOMS}).status == 200
    assert post(app, "/v1/solve", {"atoms": ATOMS}).status == 200
    resp = post(app, "/v1/solve", {"atoms": ATOMS})
    assert resp.status == 429
    err = resp.json["error"]
    assert err["code"] == "rate_limited"
    # rate 2/s and an empty bucket → exactly 0.5 s to the next token;
    # the header is the RFC 9110 integer ceiling of the exact float.
    assert err["retry_after_s"] == pytest.approx(0.5)
    assert resp.headers["Retry-After"] == "1"
    # Advance the injected clock past the refill: admitted again.
    clock.advance(0.5)
    assert post(app, "/v1/solve", {"atoms": ATOMS}).status == 200


def test_rate_limits_are_per_tenant(app, clock):
    for _ in range(2):
        post(app, "/v1/solve", {"atoms": ATOMS})
    assert post(app, "/v1/solve", {"atoms": ATOMS}).status == 429
    # acme's empty bucket must not tax zed.
    resp = post(app, "/v1/solve", {"atoms": ATOMS}, token="zed-secret")
    assert resp.status == 200


def test_job_lifecycle(app, service):
    resp = post(app, "/v1/jobs", {"atoms": ATOMS, "seed": 2})
    assert resp.status == 202
    doc = resp.json
    job_id = doc["ticket"]
    assert job_id.startswith("job-")
    assert doc["status_url"] == f"/v1/jobs/{job_id}"
    service.drain(timeout=60)
    poll = app.handle("GET", f"/v1/jobs/{job_id}",
                      headers={"Authorization": "Bearer acme-secret"})
    assert poll.status == 200
    assert poll.json["done"] is True
    result = poll.json["result"]
    assert result["status"] in ("ok", "degraded")
    assert result["energy_hex"] == float(result["energy"]).hex()


def test_jobs_are_tenant_isolated(app, service):
    job_id = post(app, "/v1/jobs", {"atoms": ATOMS}).json["ticket"]
    service.drain(timeout=60)
    # zed polling acme's job gets the same 404 as a bogus id — the
    # endpoint must not disclose that the ticket exists.
    foreign = app.handle("GET", f"/v1/jobs/{job_id}",
                         headers={"Authorization": "Bearer zed-secret"})
    assert foreign.status == 404
    bogus = app.handle("GET", "/v1/jobs/job-000000000000",
                       headers={"Authorization": "Bearer acme-secret"})
    assert bogus.status == 404


def test_idempotency_keys_are_tenant_namespaced(app):
    """Tenant B replaying tenant A's idempotency_key must not coalesce
    onto (or read the cache of) A's result — keys are namespaced
    ``<tenant>:<key>`` at the edge."""
    r1 = post(app, "/v1/solve",
              {"atoms": ATOMS, "seed": 1, "idempotency_key": "shared"})
    r2 = post(app, "/v1/solve",
              {"atoms": ATOMS, "seed": 2, "idempotency_key": "shared"},
              token="zed-secret")
    assert r1.status == 200 and r2.status == 200
    assert r1.json["result"]["key"] == "acme:shared"
    assert r2.json["result"]["key"] == "zed:shared"
    # Different recipes under the "same" client key: each tenant gets
    # its own energy, not the other tenant's cached one.
    assert (r1.json["result"]["energy_hex"]
            != r2.json["result"]["energy_hex"])


class _StubTicket:
    def __init__(self, key: str) -> None:
        self.key = key

    def done(self) -> bool:
        return False


class _StubBackend:
    """Records submissions; tickets never complete (jobs stay open)."""

    def __init__(self) -> None:
        self.submitted = []

    def submit(self, request):
        self.submitted.append(request)
        return _StubTicket(request.key())


def test_full_job_table_rejects_before_backend_submit(clock):
    """503 jobs_full must fire *before* the solve is admitted — the
    backend must never run work whose ticket nobody can poll."""
    backend = _StubBackend()
    app = EdgeApp(backend, make_registry(), clock=clock,
                  limiter=RateLimiter(clock=clock), job_capacity=1)
    assert post(app, "/v1/jobs", {"atoms": ATOMS}).status == 202
    clock.advance(1.0)  # refill the rate bucket
    resp = post(app, "/v1/jobs", {"atoms": ATOMS, "seed": 2})
    assert resp.status == 503
    assert resp.json["error"]["code"] == "jobs_full"
    assert len(backend.submitted) == 1  # the rejected one never ran


def test_job_table_reservation_accounting():
    from repro.edge import JobTable, JobsFullError

    table = JobTable(capacity=1)
    table.reserve()
    with pytest.raises(JobsFullError):
        table.reserve()          # an in-flight reservation holds a slot
    table.release()
    table.reserve()              # a released slot is claimable again
    rec = table.create("job-1", "acme", "k", _StubTicket("k"),
                       created_t=0.0, reserved=True)
    assert rec.job_id == "job-1"
    with pytest.raises(JobsFullError):
        table.reserve()          # a still-running job keeps it full


def test_healthz_schema_service(app):
    resp = app.handle("GET", "/healthz")
    assert resp.status == 200
    doc = resp.json
    assert doc["status"] == "ok"
    assert doc["backend"] == "service"
    svc = doc["service"]
    assert set(svc) == {"queue_depth", "pending", "breaker",
                        "cache_entries"}
    assert set(doc["jobs"]) == {"open", "done", "retained"}
    # Count only — /healthz is unauthenticated, so tenant *names*
    # (customer identity) must never appear in it.
    assert doc["tenants"] == 2
    assert "acme" not in resp.body.decode()


def test_metrics_exposition(app):
    obs.enable(reset=True)
    try:
        post(app, "/v1/solve", {"atoms": ATOMS})
        resp = app.handle("GET", "/metrics")
        assert resp.status == 200
        assert resp.headers["Content-Type"].startswith("text/plain")
        text = resp.body.decode()
        assert "repro_edge_requests" in text
        assert "repro_edge_request_seconds" in text
        assert "repro_edge_tenant_requests_acme" in text
        assert "repro_serve_requests" in text  # backend series too
        for line in text.splitlines():
            assert line.startswith(("#", "repro_")) or not line
    finally:
        obs.disable()


def test_request_log_is_redacted_and_clock_injected(service, clock):
    import io

    stream = io.StringIO()
    app = EdgeApp(service, make_registry(), clock=clock, seed=7,
                  limiter=RateLimiter(clock=clock),
                  log_stream=stream)
    clock.t = 12.0
    body = json.dumps({"atoms": ATOMS}).encode()
    post(app, "/v1/solve", {"atoms": ATOMS})
    (rec,) = app.log.records()
    assert rec["t_s"] == 12.0          # injected clock, not wall clock
    assert rec["tenant"] == "acme"
    assert rec["status"] == 200
    assert rec["body_sha256"] == body_digest(body)
    line = stream.getvalue()
    assert "acme-secret" not in line
    assert '"atoms"' not in line       # bodies never reach the log
    assert json.loads(line) == rec


def test_redact_headers_masks_credentials():
    out = redact_headers({"Authorization": "Bearer acme-secret",
                          "Content-Type": "application/json"})
    assert "acme-secret" not in str(out)
    assert out["content-type"] == "application/json"


def test_backpressure_maps_to_typed_429(clock):
    """A full admission queue surfaces as a typed edge error, not a
    raw serve exception."""
    svc = SolveService(workers=1, queue_capacity=1)
    try:
        app = EdgeApp(svc, make_registry(), clock=clock,
                      limiter=RateLimiter(clock=clock))
        statuses = [post(app, "/v1/jobs", {"atoms": 400, "seed": s},
                         token="zed-secret" if s % 2 else "acme-secret"
                         ).status
                    for s in range(4)]
        # Some were admitted; any rejection is a typed 429/503 with a
        # JSON error body, never an unhandled exception.
        assert set(statuses) <= {202, 429, 503}
    finally:
        svc.close()
