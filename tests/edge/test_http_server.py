"""The edge over real sockets: concurrency, wire semantics, parity.

The headline acceptance check lives here: an energy served over HTTP
is bitwise identical (``float.hex()``) to the same request submitted
in-process — for a single service backend *and* a multi-shard fleet.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.edge import EdgeApp, EdgeServer, TenantConfig, TenantRegistry
from repro.fleet import ShardedFleet
from repro.molecules.generator import synthetic_protein
from repro.serve import SolveRequest, SolveService

ATOMS = 60
TOKEN = "wire-secret"


def registry(max_body: int = 4096) -> TenantRegistry:
    return TenantRegistry([TenantConfig(
        name="wire", token=TOKEN, rate_per_s=500.0, burst=200,
        max_body_bytes=max_body)])


def call(url, path, doc=None, method=None, token=TOKEN, timeout=60):
    """urllib round-trip → (status, parsed JSON body)."""
    data = None if doc is None else json.dumps(doc).encode()
    req = urllib.request.Request(
        url + path, data=data, method=method,
        headers={"Authorization": f"Bearer {token}",
                 "Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def in_process_energy_hex(atoms: int, seed: int) -> str:
    """The same recipe through the library path, no HTTP anywhere."""
    svc = SolveService(workers=1, queue_capacity=16)
    try:
        mol = synthetic_protein(atoms, seed=seed)
        ticket = svc.submit(SolveRequest(molecule=mol))
        result = ticket.result(timeout=120)
        assert result.ok
        return float(result.energy).hex()
    finally:
        svc.close()


@pytest.fixture()
def service_server():
    svc = SolveService(workers=2, queue_capacity=32)
    app = EdgeApp(svc, registry(), seed=3)
    with EdgeServer(app) as server:
        yield server
    svc.close()


def test_http_energy_bitwise_matches_in_process(service_server):
    status, doc = call(service_server.url, "/v1/solve",
                       {"atoms": ATOMS, "seed": 5})
    assert status == 200
    assert doc["result"]["energy_hex"] == \
        in_process_energy_hex(ATOMS, seed=5)


def test_http_energy_bitwise_matches_across_fleet_shards():
    fleet = ShardedFleet(shards=3, backend="thread",
                         workers_per_shard=1, queue_capacity=32)
    app = EdgeApp(fleet, registry(), seed=3)
    expected = in_process_energy_hex(ATOMS, seed=5)
    try:
        with EdgeServer(app) as server:
            status, health = call(server.url, "/healthz")
            assert status == 200
            assert health["backend"] == "fleet"
            assert health["fleet"]["shards_live"] == 3
            assert set(health["fleet"]) == {
                "shards_live", "shards_dead", "queue_depth",
                "outstanding", "submitted", "completed", "shed",
                "rerouted"}
            # Distinct idempotency keys defeat coalescing/caching of
            # the *edge* answer, so every shard the router picks must
            # reproduce the energy from scratch-or-cache identically.
            for i in range(3):
                status, doc = call(
                    server.url, "/v1/solve",
                    {"atoms": ATOMS, "seed": 5,
                     "idempotency_key": f"probe-{i}"})
                assert status == 200
                assert doc["result"]["energy_hex"] == expected
    finally:
        fleet.close()


def test_concurrent_clients_all_served(service_server):
    url = service_server.url

    def one(i):
        return call(url, "/v1/solve",
                    {"atoms": ATOMS, "seed": i % 3})

    with ThreadPoolExecutor(max_workers=8) as pool:
        outcomes = list(pool.map(one, range(24)))
    assert all(status == 200 for status, _ in outcomes)
    # Same recipe → same bits, regardless of which thread asked.
    by_seed = {}
    for (_, doc), i in zip(outcomes, range(24)):
        by_seed.setdefault(i % 3, set()).add(
            doc["result"]["energy_hex"])
    assert all(len(hexes) == 1 for hexes in by_seed.values())


def test_oversize_body_gets_413_over_the_wire():
    svc = SolveService(workers=1, queue_capacity=8)
    app = EdgeApp(svc, registry(max_body=1024), seed=3)
    try:
        with EdgeServer(app) as server:
            big = {"atoms": ATOMS, "idempotency_key": "x" * 4096}
            status, doc = call(server.url, "/v1/solve", big)
            assert status == 413
            assert doc["error"]["code"] == "payload_too_large"
    finally:
        svc.close()


def test_stalled_upload_is_dropped_not_pinned(service_server,
                                              monkeypatch):
    """A client that declares Content-Length and then stalls must be
    disconnected by the handler's socket timeout — not pin a handler
    thread forever (slowloris)."""
    import socket

    from repro.edge.server import _EdgeHandler

    monkeypatch.setattr(_EdgeHandler, "timeout", 0.5)
    host, port = service_server.address
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(b"POST /v1/solve HTTP/1.1\r\n"
                     b"Host: edge\r\n"
                     b"Authorization: Bearer " + TOKEN.encode() +
                     b"\r\nContent-Length: 64\r\n\r\n")  # body withheld
        sock.settimeout(30)
        # The server must close the connection once its read times
        # out; recv unblocking with b"" is that remote close.  If the
        # thread were pinned, recv would sit until our 30 s guard.
        while sock.recv(1024):
            pass
    url = service_server.url
    status, doc = call(url, "/v1/jobs", {"atoms": ATOMS, "seed": 2})
    assert status == 202
    status_url = doc["status_url"]
    deadline = time.monotonic() + 120
    while True:
        status, doc = call(url, status_url)
        assert status == 200
        if doc["done"]:
            break
        assert time.monotonic() < deadline, "job never completed"
        time.sleep(0.05)
    result = doc["result"]
    assert result["status"] in ("ok", "degraded")
    assert result["energy_hex"] == float(result["energy"]).hex()


def test_metrics_and_healthz_over_the_wire(service_server):
    from repro import obs

    url = service_server.url
    status, doc = call(url, "/healthz", token="not-checked")
    assert status == 200 and doc["backend"] == "service"
    obs.enable(reset=True)
    try:
        call(url, "/v1/solve", {"atoms": ATOMS, "seed": 1})
        req = urllib.request.Request(url + "/metrics")
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
    finally:
        obs.disable()
    assert "repro_edge_requests" in text
    assert "repro_serve_requests" in text
    # Exposition format: every non-blank line is a comment or sample.
    for line in text.splitlines():
        assert line.startswith(("#", "repro_")) or not line


def test_auth_failure_over_the_wire(service_server):
    status, doc = call(service_server.url, "/v1/solve",
                       {"atoms": ATOMS}, token="wrong")
    assert status == 401
    assert doc["error"]["code"] == "unauthorized"
