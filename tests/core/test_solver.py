"""PolarizationSolver facade tests."""

import numpy as np
import pytest

from repro import PolarizationSolver
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.molecules.transform import RigidTransform


class TestMethods:
    def test_all_methods_agree_tight(self, protein_small, tight_params):
        energies = {}
        for method in ("octree", "dualtree", "naive"):
            s = PolarizationSolver(protein_small, tight_params,
                                   method=method)
            energies[method] = s.energy()
        ref = energies["naive"]
        # octree is exact at tight ε; dualtree is ε-tight (see
        # tests/core/test_dualtree.py for why).
        assert energies["octree"] == pytest.approx(ref, rel=1e-9)
        assert energies["dualtree"] == pytest.approx(ref, rel=1e-5)

    def test_unknown_method_rejected(self, protein_small):
        with pytest.raises(ValueError):
            PolarizationSolver(protein_small, method="magic")

    def test_naive_matches_direct_calls(self, protein_small):
        s = PolarizationSolver(protein_small, method="naive")
        R = born_radii_naive_r6(protein_small)
        assert np.allclose(s.born_radii(), R)
        assert s.energy() == pytest.approx(epol_naive(protein_small, R))


class TestCaching:
    def test_energy_cached(self, protein_small, default_params):
        s = PolarizationSolver(protein_small, default_params)
        e1 = s.energy()
        # Second call must not re-run (same object equality, instant).
        assert s.energy() == e1
        assert s._epol_result is not None

    def test_trees_built_once(self, protein_small, default_params):
        s = PolarizationSolver(protein_small, default_params)
        t1 = s.atoms_tree
        s.energy()
        assert s.atoms_tree is t1


class TestRigidInvariance:
    def test_transformed_solver_same_energy(self, protein_small,
                                            default_params):
        s = PolarizationSolver(protein_small, default_params)
        e = s.energy()
        t = RigidTransform.random(seed=3, max_translation=30.0)
        s2 = s.transformed(t)
        assert s2.energy() == pytest.approx(e, abs=1e-6)
        # Octrees were reused (same topology arrays).
        assert s2.atoms_tree.start is s.atoms_tree.start

    def test_transformed_radii_match(self, protein_small, default_params):
        s = PolarizationSolver(protein_small, default_params)
        t = RigidTransform.random(seed=8)
        s2 = s.transformed(t)
        assert np.allclose(s2.born_radii(), s.born_radii(), atol=1e-9)


class TestReport:
    def test_report_fields(self, protein_small, default_params):
        s = PolarizationSolver(protein_small, default_params)
        rep = s.report()
        assert rep.energy == s.energy()
        assert rep.method == "octree"
        assert rep.atoms_tree_nodes > 0
        assert rep.qpoints_tree_nodes > 0
        assert rep.born_counts is not None
        assert rep.epol_counts is not None

    def test_naive_report_has_no_counts(self, protein_small):
        rep = PolarizationSolver(protein_small, method="naive").report()
        assert rep.born_counts is None
