"""GB pair kernels and approximate-math accuracy bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import COULOMB_KCAL, TAU_WATER
from repro.core.gb import (
    energy_prefactor,
    fast_exp,
    fast_rsqrt,
    fgb_still,
    inv_fgb_still,
    pair_energy_matrix,
)


class TestFgb:
    def test_formula(self):
        r2 = np.array([9.0])
        RiRj = np.array([4.0])
        expected = np.sqrt(9.0 + 4.0 * np.exp(-9.0 / 16.0))
        assert fgb_still(r2, RiRj)[0] == pytest.approx(expected)

    def test_zero_distance_gives_born_radius(self):
        # f_GB(i, i) = sqrt(R_i · R_i) = R_i.
        assert fgb_still(np.array([0.0]),
                         np.array([6.25]))[0] == pytest.approx(2.5)

    @given(st.floats(0.01, 1e3), st.floats(0.01, 1e2))
    @settings(max_examples=200, deadline=None)
    def test_bounds_property(self, r2, RiRj):
        """r ≤ f_GB ≤ sqrt(r² + R_i R_j) for all inputs."""
        f = fgb_still(np.array([r2]), np.array([RiRj]))[0]
        assert np.sqrt(r2) - 1e-12 <= f <= np.sqrt(r2 + RiRj) + 1e-12

    def test_inv_matches_reciprocal(self):
        rng = np.random.default_rng(0)
        r2 = rng.uniform(0.1, 100, 50)
        RiRj = rng.uniform(0.5, 20, 50)
        assert np.allclose(inv_fgb_still(r2, RiRj),
                           1.0 / fgb_still(r2, RiRj))


class TestFastMath:
    def test_fast_rsqrt_accuracy(self):
        x = np.logspace(-3, 6, 1000)
        rel = np.abs(fast_rsqrt(x) * np.sqrt(x) - 1.0)
        assert rel.max() < 5e-5

    def test_fast_exp_accuracy_in_kernel_range(self):
        # The GB damping exponent lives in [-25, 0].
        x = np.linspace(-25.0, 0.0, 500)
        got = fast_exp(x)
        want = np.exp(x)
        # Absolute error is what matters for f_GB (the damping factor
        # only perturbs r² + R_iR_j·exp, and it is ≤ 1).
        assert np.max(np.abs(got - want)) < 0.01
        # Relative error tight where the factor is O(1).
        big = want > 0.5
        assert np.max(np.abs(got[big] / want[big] - 1.0)) < 0.02

    def test_fast_exp_nonnegative(self):
        assert np.all(fast_exp(np.array([-1000.0, -64.0, 0.0])) >= 0.0)

    def test_approx_kernel_close_to_exact(self):
        rng = np.random.default_rng(1)
        r2 = rng.uniform(1.0, 400.0, 200)
        RiRj = rng.uniform(1.0, 25.0, 200)
        exact = inv_fgb_still(r2, RiRj, approx_math=False)
        approx = inv_fgb_still(r2, RiRj, approx_math=True)
        assert np.max(np.abs(approx / exact - 1.0)) < 0.01


class TestPairEnergy:
    def test_against_explicit_loop(self):
        rng = np.random.default_rng(2)
        pi, pj = rng.normal(size=(3, 3)), rng.normal(size=(4, 3)) + 5.0
        qi, qj = rng.normal(size=3), rng.normal(size=4)
        Ri, Rj = rng.uniform(1, 3, 3), rng.uniform(1, 3, 4)
        want = 0.0
        for a in range(3):
            for b in range(4):
                r2 = np.sum((pi[a] - pj[b]) ** 2)
                f = np.sqrt(r2 + Ri[a] * Rj[b]
                            * np.exp(-r2 / (4 * Ri[a] * Rj[b])))
                want += qi[a] * qj[b] / f
        got = pair_energy_matrix(pi, qi, Ri, pj, qj, Rj)
        assert got == pytest.approx(want)

    def test_prefactor(self):
        assert energy_prefactor() == pytest.approx(
            -0.5 * TAU_WATER * COULOMB_KCAL)
        assert energy_prefactor(0.5) == pytest.approx(-0.25 * COULOMB_KCAL)
