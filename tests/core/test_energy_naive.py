"""Naive E_pol: analytic checks and blocking invariance."""

import numpy as np
import pytest

from repro.constants import COULOMB_KCAL, TAU_WATER
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.molecules.molecule import Molecule


def _bare(positions, charges, radii):
    return Molecule(np.asarray(positions, float), np.asarray(charges,
                                                             float),
                    np.asarray(radii, float))


class TestAnalytic:
    def test_single_ion_born_formula(self):
        """One ion of charge q and Born radius R: the classic Born
        solvation energy −τ/2 · C · q²/R."""
        mol = _bare([[0, 0, 0]], [1.0], [2.0])
        got = epol_naive(mol, np.array([2.0]))
        want = -0.5 * TAU_WATER * COULOMB_KCAL * 1.0 / 2.0
        assert got == pytest.approx(want)

    def test_two_atoms_explicit(self):
        mol = _bare([[0, 0, 0], [4.0, 0, 0]], [1.0, -1.0], [1.0, 1.0])
        R = np.array([1.5, 2.5])
        r2 = 16.0
        fgb = np.sqrt(r2 + 1.5 * 2.5 * np.exp(-r2 / (4 * 1.5 * 2.5)))
        raw = (1.0 / 1.5) + (1.0 / 2.5) + 2.0 * (1.0 * -1.0) / fgb
        want = -0.5 * TAU_WATER * COULOMB_KCAL * raw
        assert epol_naive(mol, R) == pytest.approx(want)

    def test_energy_negative_for_physical_system(self, protein_small):
        R = born_radii_naive_r6(protein_small)
        assert epol_naive(protein_small, R) < 0.0

    def test_scaling_with_charge(self):
        """E_pol scales quadratically with a uniform charge scale."""
        mol = _bare([[0, 0, 0], [3.0, 0, 0]], [0.5, 0.7], [1.2, 1.2])
        R = np.array([1.5, 1.6])
        e1 = epol_naive(mol, R)
        mol2 = _bare(mol.positions, mol.charges * 2.0, mol.radii)
        assert epol_naive(mol2, R) == pytest.approx(4.0 * e1)


class TestValidation:
    def test_block_invariance(self, protein_small):
        R = born_radii_naive_r6(protein_small)
        a = epol_naive(protein_small, R, block=37)
        b = epol_naive(protein_small, R, block=10000)
        assert a == pytest.approx(b, rel=1e-12)

    def test_rejects_bad_radii(self):
        mol = _bare([[0, 0, 0]], [1.0], [1.0])
        with pytest.raises(ValueError):
            epol_naive(mol, np.array([0.0]))
        with pytest.raises(ValueError):
            epol_naive(mol, np.array([1.0, 2.0]))

    def test_tau_parameter(self):
        mol = _bare([[0, 0, 0]], [1.0], [1.0])
        R = np.array([2.0])
        assert epol_naive(mol, R, tau=0.5) == pytest.approx(
            0.5 / TAU_WATER * epol_naive(mol, R))
