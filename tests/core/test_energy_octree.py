"""Octree E_pol solver: bucket algebra, leaf partitioning, convergence."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.core.energy_octree import (
    approx_epol_for_leaves,
    build_charge_buckets,
    epol_octree,
)
from repro.octree.build import build_octree


@pytest.fixture(scope="module")
def prepared(protein_small):
    params = ApproxParams()
    tree = build_octree(protein_small.positions, params.leaf_size)
    R = born_radii_naive_r6(protein_small)
    q_sorted = protein_small.charges[tree.perm]
    R_sorted = R[tree.perm]
    buckets = build_charge_buckets(tree, q_sorted, R_sorted,
                                   params.eps_epol)
    return protein_small, params, tree, R, q_sorted, R_sorted, buckets


class TestChargeBuckets:
    def test_bucket_sums_equal_node_charges(self, prepared):
        _, _, tree, _, q_sorted, _, buckets = prepared
        node_q = buckets.table.sum(axis=1)
        for node in range(0, tree.nnodes, 5):
            sl = tree.slice_of(node)
            assert node_q[node] == pytest.approx(q_sorted[sl].sum(),
                                                 abs=1e-10)

    def test_bucket_geometry(self, prepared):
        _, params, _, _, _, R_sorted, buckets = prepared
        assert buckets.r_min == pytest.approx(R_sorted.min())
        assert buckets.r_max == pytest.approx(R_sorted.max())
        # Products matrix is R_min²(1+ε)^(i+j).
        m = buckets.nbuckets
        want = buckets.r_min ** 2 * (1 + params.eps_epol) ** (
            np.add.outer(np.arange(m), np.arange(m)))
        assert np.allclose(buckets.products, want)

    def test_uniform_radii_single_bucket(self):
        tree = build_octree(np.random.default_rng(0).normal(size=(50, 3)))
        q = np.ones(50)
        R = np.full(50, 2.0)
        b = build_charge_buckets(tree, q, R, 0.9)
        assert b.nbuckets == 1

    def test_rejects_nonpositive_radii(self):
        tree = build_octree(np.zeros((2, 3)) + [[0], [1]])
        with pytest.raises(ValueError):
            build_charge_buckets(tree, np.ones(2), np.array([1.0, 0.0]),
                                 0.9)


class TestLeafPartition:
    def test_leaf_subsets_sum_to_total(self, prepared):
        mol, params, tree, R, q_sorted, R_sorted, buckets = prepared
        full, counts, _ = approx_epol_for_leaves(
            tree, q_sorted, R_sorted, buckets, params)
        nleaves = len(tree.leaves)
        acc = 0.0
        for lo, hi in ((0, nleaves // 4), (nleaves // 4, nleaves // 2),
                       (nleaves // 2, nleaves)):
            part, _, _ = approx_epol_for_leaves(
                tree, q_sorted, R_sorted, buckets, params,
                v_leaf_subset=np.arange(lo, hi))
            acc += part
        assert acc == pytest.approx(full, rel=1e-12)

    def test_empty_subset_is_zero(self, prepared):
        _, params, tree, _, q_sorted, R_sorted, buckets = prepared
        val, counts, _ = approx_epol_for_leaves(
            tree, q_sorted, R_sorted, buckets, params,
            v_leaf_subset=np.empty(0, dtype=int))
        assert val == 0.0 and counts.frontier_visits == 0

    def test_per_source_counts_sum(self, prepared):
        _, params, tree, _, q_sorted, R_sorted, buckets = prepared
        _, counts, ps = approx_epol_for_leaves(
            tree, q_sorted, R_sorted, buckets, params)
        assert ps.exact_interactions.sum() == counts.exact_interactions
        assert ps.visits.sum() == counts.frontier_visits


class TestAccuracy:
    def test_tight_eps_matches_naive(self, protein_small, tight_params):
        R = born_radii_naive_r6(protein_small)
        ref = epol_naive(protein_small, R)
        got = epol_octree(protein_small, R, tight_params).energy
        assert got == pytest.approx(ref, rel=1e-9)

    def test_default_eps_under_one_percent(self, protein_medium):
        R = born_radii_naive_r6(protein_medium)
        ref = epol_naive(protein_medium, R)
        got = epol_octree(protein_medium, R, ApproxParams()).energy
        assert abs(got - ref) / abs(ref) < 0.01

    def test_single_atom_self_energy(self, single_atom):
        R = np.array([2.0])
        got = epol_octree(single_atom, R).energy
        assert got == pytest.approx(epol_naive(single_atom, R))

    def test_far_pairs_actually_approximate(self):
        """Two well-separated clusters must trigger the far-field
        bucket kernel, and still be accurate."""
        from repro.molecules.generator import synthetic_protein
        a = synthetic_protein(250, seed=1, with_surface=False)
        b = synthetic_protein(250, seed=2, with_surface=False)
        from repro.molecules.molecule import Molecule
        mol = Molecule(
            np.vstack([a.positions, b.positions + 120.0]),
            np.concatenate([a.charges, b.charges]),
            np.concatenate([a.radii, b.radii]))
        R = np.random.default_rng(0).uniform(1.5, 4.0, mol.natoms)
        res = epol_octree(mol, R, ApproxParams(eps_epol=0.9))
        assert res.counts.far_evaluations > 0
        ref = epol_naive(mol, R)
        assert abs(res.energy - ref) / abs(ref) < 0.01
