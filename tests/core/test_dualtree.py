"""Dual-tree (prior-work OCT_CILK) solver tests."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.dualtree import (
    born_radii_dualtree,
    epol_dualtree,
    node_aggregates,
)
from repro.core.energy_naive import epol_naive
from repro.octree.build import build_octree


class TestNodeAggregates:
    def test_match_slices(self):
        pts = np.random.default_rng(0).normal(size=(150, 3))
        tree = build_octree(pts, leaf_size=8)
        vals = np.random.default_rng(1).normal(size=(150, 3))
        agg = node_aggregates(tree, vals[tree.perm])
        for node in range(0, tree.nnodes, 7):
            sl = tree.slice_of(node)
            assert np.allclose(agg[node], vals[tree.perm][sl].sum(axis=0))

    def test_scalar_values(self):
        pts = np.random.default_rng(2).normal(size=(60, 3))
        tree = build_octree(pts, leaf_size=4)
        vals = np.arange(60, dtype=float)
        agg = node_aggregates(tree, vals[tree.perm])
        assert agg[0] == pytest.approx(vals.sum())


class TestBornDualtree:
    def test_tight_eps_matches_naive(self, protein_small, tight_params):
        ref = born_radii_naive_r6(protein_small)
        got = born_radii_dualtree(protein_small, tight_params).radii
        assert np.allclose(got, ref, rtol=1e-10)

    def test_default_eps_close(self, protein_medium):
        ref = born_radii_naive_r6(protein_medium)
        got = born_radii_dualtree(protein_medium).radii
        assert np.mean(np.abs(got - ref) / ref) < 0.02

    def test_sphere_invariant(self, single_atom):
        assert born_radii_dualtree(single_atom).radii[0] == \
            pytest.approx(2.0, rel=1e-6)

    def test_per_leaf_costs_cover_totals(self, protein_small):
        res = born_radii_dualtree(protein_small)
        ps = res.per_source
        assert ps.exact_interactions.sum() == pytest.approx(
            res.counts.exact_interactions)
        assert ps.far.sum() == pytest.approx(res.counts.far_evaluations,
                                             rel=1e-9)


class TestEpolDualtree:
    def test_matches_naive_tight(self, protein_small, tight_params):
        # Unlike the single-tree scheme, the dual-tree MAC may still
        # collapse *singleton* leaf pairs (radius 0 ⟹ exact distance,
        # only the (1+ε) Born-radius bucketing remains), so agreement
        # is ε-tight rather than exact.
        R = born_radii_naive_r6(protein_small)
        ref = epol_naive(protein_small, R)
        got = epol_dualtree(protein_small, R, tight_params).energy
        assert got == pytest.approx(ref, rel=1e-5)

    def test_ordered_pair_coverage(self, protein_small):
        """At ε→0 every ordered pair is covered exactly once: exact
        terms + pairs under far-field collapses account for M²."""
        R = born_radii_naive_r6(protein_small)
        res = epol_dualtree(protein_small, R,
                            ApproxParams(eps_epol=0.01))
        m = protein_small.natoms
        assert res.counts.exact_interactions <= m * m
        # Nearly everything is exact at this ε; what's missing went
        # through the far-field kernel, not nowhere.
        assert res.counts.exact_interactions > 0.99 * m * m
        assert res.counts.far_evaluations >= 0
        ref = epol_naive(protein_small, R)
        assert abs(res.energy - ref) / abs(ref) < 1e-4

    def test_default_eps_close(self, protein_medium):
        R = born_radii_naive_r6(protein_medium)
        ref = epol_naive(protein_medium, R)
        got = epol_dualtree(protein_medium, R).energy
        assert abs(got - ref) / abs(ref) < 0.02
