"""GB force tests: finite differences, Newton's third law, octree match."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.core.forces import forces_naive, forces_octree, net_force
from repro.molecules import synthetic_protein
from repro.molecules.molecule import Molecule


@pytest.fixture(scope="module")
def small_system():
    rng = np.random.default_rng(17)
    n = 40
    mol = Molecule(rng.uniform(0, 12, size=(n, 3)),
                   rng.normal(scale=0.4, size=n),
                   rng.uniform(1.2, 1.8, size=n))
    R = rng.uniform(1.5, 4.0, size=n)
    return mol, R


class TestFiniteDifferences:
    def test_gradient_matches_energy(self, small_system):
        """Central finite differences of the exact energy (with fixed
        Born radii) must match the analytic forces."""
        mol, R = small_system
        F = forces_naive(mol, R)
        h = 1e-5
        rng = np.random.default_rng(0)
        for atom in rng.choice(mol.natoms, size=5, replace=False):
            for axis in range(3):
                plus = mol.positions.copy()
                plus[atom, axis] += h
                minus = mol.positions.copy()
                minus[atom, axis] -= h
                ep = epol_naive(Molecule(plus, mol.charges, mol.radii), R)
                em = epol_naive(Molecule(minus, mol.charges, mol.radii), R)
                fd = -(ep - em) / (2 * h)
                assert F[atom, axis] == pytest.approx(fd, rel=1e-4,
                                                      abs=1e-7)


class TestConservation:
    def test_net_force_zero(self, small_system):
        mol, R = small_system
        F = forces_naive(mol, R)
        assert np.allclose(net_force(F), 0.0, atol=1e-9)

    def test_net_force_zero_octree_tight(self, protein_small):
        R = born_radii_naive_r6(protein_small)
        res = forces_octree(protein_small, R,
                            ApproxParams(eps_epol=0.05))
        assert np.allclose(net_force(res.forces), 0.0, atol=1e-6)


class TestOctreeForces:
    def test_tight_eps_matches_naive(self, protein_small):
        R = born_radii_naive_r6(protein_small)
        exact = forces_naive(protein_small, R)
        octree = forces_octree(protein_small, R,
                               ApproxParams(eps_epol=0.05)).forces
        scale = np.abs(exact).max()
        assert np.allclose(octree, exact, atol=1e-6 * scale)

    def test_default_eps_close(self, protein_medium):
        R = born_radii_naive_r6(protein_medium)
        exact = forces_naive(protein_medium, R)
        octree = forces_octree(protein_medium, R, ApproxParams()).forces
        scale = np.linalg.norm(exact, axis=1).mean()
        err = np.linalg.norm(octree - exact, axis=1)
        assert np.median(err) < 0.05 * scale

    def test_far_field_engaged_on_separated_clusters(self):
        a = synthetic_protein(250, seed=1, with_surface=False)
        b = synthetic_protein(250, seed=2, with_surface=False)
        mol = Molecule(np.vstack([a.positions, b.positions + 150.0]),
                       np.concatenate([a.charges, b.charges]),
                       np.concatenate([a.radii, b.radii]))
        R = np.random.default_rng(1).uniform(1.5, 3.5, mol.natoms)
        res = forces_octree(mol, R, ApproxParams(eps_epol=0.9))
        assert res.counts.far_evaluations > 0
        exact = forces_naive(mol, R)
        scale = np.abs(exact).max()
        assert np.allclose(res.forces, exact, atol=0.02 * scale)

    def test_validation(self, small_system):
        mol, R = small_system
        with pytest.raises(ValueError):
            forces_naive(mol, R[:-1])
