"""Born-model registry tests."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.models import BORN_MODELS, born_radii, compare_models


class TestDispatch:
    def test_unknown_model(self, protein_small):
        with pytest.raises(ValueError, match="unknown Born model"):
            born_radii(protein_small, "magic")

    @pytest.mark.parametrize("model", BORN_MODELS)
    def test_every_model_runs(self, protein_small, model):
        R = born_radii(protein_small, model)
        assert len(R) == protein_small.natoms
        assert np.all(np.isfinite(R))
        assert np.all(R >= protein_small.radii - 1e-12)

    def test_r6_surface_octree_vs_naive(self, protein_small):
        tight = ApproxParams(eps_born=0.05, eps_epol=0.05)
        fast = born_radii(protein_small, "r6-surface", params=tight)
        exact = born_radii(protein_small, "r6-surface", use_octree=False)
        assert np.allclose(fast, exact, rtol=1e-8)
        assert np.allclose(exact, born_radii_naive_r6(protein_small))

    def test_cutoff_plumbs_through(self, protein_small):
        full = born_radii(protein_small, "hct")
        cut = born_radii(protein_small, "hct", cutoff=30.0)
        assert np.allclose(full, cut, rtol=0.08)


class TestCompare:
    def test_compare_models_keys(self, protein_small):
        out = compare_models(protein_small, models=("r6-surface", "hct"))
        assert set(out) == {"r6-surface", "hct"}

    def test_models_genuinely_differ(self, protein_small):
        out = compare_models(protein_small,
                             models=("r6-surface", "r4-surface", "hct"))
        r6, r4, hct = (out[k] for k in ("r6-surface", "r4-surface",
                                        "hct"))
        assert not np.allclose(r6, r4, rtol=0.01)
        assert not np.allclose(r6, hct, rtol=0.01)
