"""Property tests of the multipole-acceptance mathematics.

These validate the inequalities DESIGN.md §1 and docs/ALGORITHMS.md §3
rely on, on randomly generated node pairs — not just on molecules.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import ApproxParams
from repro.core.born_octree import _born_far_mask


def _random_cluster(rng, center, radius, n):
    """n points inside the ball(center, radius)."""
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    r = radius * rng.uniform(0, 1, size=n) ** (1 / 3)
    return center + v * r[:, None]


class TestDistanceMac:
    @given(st.integers(0, 10_000), st.floats(0.1, 0.9),
           st.floats(1.0, 10.0), st.floats(1.0, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_distance_ratio_bound(self, seed, eps, ra, rq):
        """If the distance MAC accepts, every pairwise distance is
        within (1+ε) of the centre distance — the bound the far-field
        kernel's accuracy argument needs."""
        rng = np.random.default_rng(seed)
        sep = (ra + rq) * (1.0 + 2.0 / eps) * rng.uniform(1.001, 3.0)
        ca = np.zeros(3)
        cq = np.array([sep, 0.0, 0.0])
        pa = _random_cluster(rng, ca, ra, 25)
        pq = _random_cluster(rng, cq, rq, 25)
        # Recenter on actual centroids the way the octree does.
        ca_hat, cq_hat = pa.mean(axis=0), pq.mean(axis=0)
        ra_hat = np.max(np.linalg.norm(pa - ca_hat, axis=1))
        rq_hat = np.max(np.linalg.norm(pq - cq_hat, axis=1))
        r_hat = np.linalg.norm(cq_hat - ca_hat)
        params = ApproxParams(eps_born=eps)
        far = _born_far_mask(np.array([r_hat]),
                             np.array([ra_hat + rq_hat]), params)
        assume(bool(far[0]))
        d = np.linalg.norm(pa[:, None, :] - pq[None, :, :], axis=-1)
        assert d.max() / d.min() <= 1.0 + eps + 1e-9
        # The centre distance itself lies inside [d_min, d_max].
        assert d.min() - 1e-9 <= r_hat <= d.max() + 1e-9

    def test_strict_mac_bounds_integrand_spread(self):
        """The strict (1+ε)^(1/6) MAC bounds the spread of 1/d⁶ itself."""
        rng = np.random.default_rng(7)
        eps = 0.9
        params = ApproxParams(eps_born=eps, born_mac="strict")
        beta = (1 + eps) ** (1 / 6)
        # Margin covers the centroid shift of the sampled clusters
        # (radii are measured from empirical centroids, not the nominal
        # centres, and can exceed the nominal 1.0).
        sep = 2.0 * (beta + 1) / (beta - 1) * 1.3
        pa = _random_cluster(rng, np.zeros(3), 1.0, 40)
        pq = _random_cluster(rng, np.array([sep, 0, 0]), 1.0, 40)
        r = np.linalg.norm(pq.mean(0) - pa.mean(0))
        ra = np.max(np.linalg.norm(pa - pa.mean(0), axis=1))
        rq = np.max(np.linalg.norm(pq - pq.mean(0), axis=1))
        far = _born_far_mask(np.array([r]), np.array([ra + rq]), params)
        assert bool(far[0])
        d = np.linalg.norm(pa[:, None] - pq[None, :], axis=-1)
        spread6 = (d.max() / d.min()) ** 6
        assert spread6 <= 1.0 + eps + 1e-9

    def test_strict_stricter_than_distance(self):
        """Whatever strict accepts, distance accepts too (same ε)."""
        rng = np.random.default_rng(1)
        r = rng.uniform(1.0, 200.0, 500)
        rsum = rng.uniform(0.1, 20.0, 500)
        for eps in (0.1, 0.5, 0.9):
            strict = _born_far_mask(r, rsum,
                                    ApproxParams(eps_born=eps,
                                                 born_mac="strict"))
            dist = _born_far_mask(r, rsum,
                                  ApproxParams(eps_born=eps,
                                               born_mac="distance"))
            assert np.all(dist[strict])

    def test_far_monotone_in_distance(self):
        """At fixed radii, 'far' is upward closed in distance."""
        rsum = np.full(200, 3.0)
        r = np.linspace(0.1, 300.0, 200)
        for mac in ("distance", "strict"):
            far = _born_far_mask(r, rsum, ApproxParams(born_mac=mac))
            # Once far, always far as distance grows.
            first = np.argmax(far) if far.any() else len(far)
            assert np.all(far[first:]) or not far.any()
