"""Octree Born solver: convergence to naive, partition invariants."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core.born_naive import born_radii_naive_r6
from repro.core.born_octree import (
    ancestor_prefix,
    approx_integrals,
    born_radii_octree,
    push_integrals_to_atoms,
    qleaf_aggregates,
)
from repro.octree.build import build_octree


@pytest.fixture(scope="module")
def setup(protein_small):
    params = ApproxParams()
    surf = protein_small.require_surface()
    atoms_tree = build_octree(protein_small.positions, params.leaf_size)
    q_tree = build_octree(surf.points, params.leaf_size)
    wn = surf.weighted_normals[q_tree.perm]
    return protein_small, params, atoms_tree, q_tree, wn


class TestAccuracy:
    def test_tight_eps_matches_naive(self, protein_small, tight_params):
        ref = born_radii_naive_r6(protein_small)
        got = born_radii_octree(protein_small, tight_params).radii
        assert np.allclose(got, ref, rtol=1e-10)

    def test_default_eps_close_to_naive(self, protein_medium):
        ref = born_radii_naive_r6(protein_medium)
        got = born_radii_octree(protein_medium, ApproxParams()).radii
        rel = np.abs(got - ref) / ref
        assert np.mean(rel) < 0.01

    def test_sphere_invariant(self, single_atom):
        res = born_radii_octree(single_atom)
        assert res.radii[0] == pytest.approx(2.0, rel=1e-6)

    def test_error_decreases_with_eps(self, protein_medium):
        ref = born_radii_naive_r6(protein_medium)
        errs = []
        for eps in (0.9, 0.3, 0.05):
            got = born_radii_octree(
                protein_medium, ApproxParams(eps_born=eps)).radii
            errs.append(np.mean(np.abs(got - ref) / ref))
        assert errs[0] >= errs[1] >= errs[2]


class TestPartitionInvariants:
    def test_qleaf_subset_union_equals_full(self, setup):
        mol, params, atoms_tree, q_tree, wn = setup
        full_node, full_atom, _, _ = approx_integrals(
            atoms_tree, q_tree, wn, params)
        nleaves = len(q_tree.leaves)
        cut = nleaves // 3
        parts = [np.arange(0, cut), np.arange(cut, 2 * cut),
                 np.arange(2 * cut, nleaves)]
        s_node = np.zeros_like(full_node)
        s_atom = np.zeros_like(full_atom)
        for seg in parts:
            n, a, _, _ = approx_integrals(atoms_tree, q_tree, wn, params,
                                          q_leaf_subset=seg)
            s_node += n
            s_atom += a
        assert np.allclose(s_node, full_node, atol=1e-12)
        assert np.allclose(s_atom, full_atom, atol=1e-12)

    def test_empty_subset(self, setup):
        _, params, atoms_tree, q_tree, wn = setup
        n, a, counts, ps = approx_integrals(
            atoms_tree, q_tree, wn, params,
            q_leaf_subset=np.empty(0, dtype=int))
        assert not n.any() and not a.any()
        assert counts.frontier_visits == 0

    def test_atom_range_union_covers_all(self, setup):
        """Atom-based division: summing the per-range integrals and
        pushing gives radii for every atom, each computed once."""
        mol, params, atoms_tree, q_tree, wn = setup
        m = atoms_tree.npoints
        bounds = [0, m // 3, 2 * m // 3, m]
        s_node = np.zeros(atoms_tree.nnodes)
        s_atom = np.zeros(m)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            n, a, _, _ = approx_integrals(atoms_tree, q_tree, wn, params,
                                          atom_range=(lo, hi))
            s_node += n
            s_atom += a
        intrinsic = mol.radii[atoms_tree.perm]
        radii = push_integrals_to_atoms(atoms_tree, s_node, s_atom,
                                        intrinsic)
        ref = born_radii_naive_r6(mol)
        rel = np.abs(atoms_tree.scatter_to_original(radii) - ref) / ref
        assert np.mean(rel) < 0.02

    def test_atom_range_validation(self, setup):
        _, params, atoms_tree, q_tree, wn = setup
        with pytest.raises(ValueError):
            approx_integrals(atoms_tree, q_tree, wn, params,
                             atom_range=(-1, 5))

    def test_per_source_counts_sum_to_totals(self, setup):
        _, params, atoms_tree, q_tree, wn = setup
        _, _, counts, ps = approx_integrals(atoms_tree, q_tree, wn, params)
        assert ps.far.sum() == counts.far_evaluations
        assert ps.exact_interactions.sum() == counts.exact_interactions
        assert ps.visits.sum() == counts.frontier_visits


class TestPush:
    def test_ancestor_prefix(self):
        pts = np.random.default_rng(0).normal(size=(200, 3))
        tree = build_octree(pts, leaf_size=8)
        s = np.random.default_rng(1).normal(size=tree.nnodes)
        anc = ancestor_prefix(tree, s)
        # Verify against explicit parent walks.
        for node in range(0, tree.nnodes, 11):
            want, p = 0.0, tree.parent[node]
            while p >= 0:
                want += s[p]
                p = tree.parent[p]
            assert anc[node] == pytest.approx(want)

    def test_atom_range_restricts_output(self, setup):
        mol, params, atoms_tree, q_tree, wn = setup
        s_node, s_atom, _, _ = approx_integrals(atoms_tree, q_tree, wn,
                                                params)
        intrinsic = mol.radii[atoms_tree.perm]
        m = atoms_tree.npoints
        out = push_integrals_to_atoms(atoms_tree, s_node, s_atom,
                                      intrinsic, atom_range=(10, 20))
        assert np.all(np.isfinite(out[10:20]))
        assert np.all(np.isnan(out[:10]))
        assert np.all(np.isnan(out[20:]))


class TestAggregates:
    def test_qleaf_aggregates_match_slices(self, setup):
        _, _, _, q_tree, wn = setup
        agg = qleaf_aggregates(q_tree, wn)
        for row, leaf in enumerate(q_tree.leaves[::5]):
            sl = q_tree.slice_of(int(leaf))
            assert np.allclose(agg[row * 5], wn[sl].sum(axis=0))


class TestOctreeReuse:
    def test_prebuilt_trees_give_same_answer(self, protein_small):
        params = ApproxParams()
        a = born_radii_octree(protein_small, params)
        b = born_radii_octree(protein_small, params,
                              atoms_tree=a.atoms_tree,
                              q_tree=a.qpoints_tree)
        assert np.array_equal(a.radii, b.radii)
