"""Naive Born radii: the analytic sphere invariant and edge cases."""

import numpy as np
import pytest

from repro.core.born_naive import (
    born_radii_naive_r4,
    born_radii_naive_r6,
    integral_to_radius_r4,
    integral_to_radius_r6,
)
from repro.constants import FOUR_PI
from repro.molecules.molecule import Molecule
from repro.molecules.surface import sample_surface


class TestSphereInvariant:
    """For a single sphere of radius R, both the r⁴ and r⁶ surface
    integrals recover exactly R (DESIGN.md §7)."""

    @pytest.mark.parametrize("radius", [1.0, 2.0, 3.7])
    def test_r6(self, radius):
        mol = Molecule(np.zeros((1, 3)), np.array([1.0]),
                       np.array([radius]))
        mol = sample_surface(mol, subdivisions=3, degree=2)
        assert born_radii_naive_r6(mol)[0] == pytest.approx(radius,
                                                            rel=1e-6)

    def test_r4(self, single_atom):
        assert born_radii_naive_r4(single_atom)[0] == pytest.approx(
            2.0, rel=1e-6)

    def test_off_centre_atom_still_positive(self):
        """An atom near (not at) the centre of a sphere surface gets a
        finite positive radius."""
        mol = Molecule(np.array([[0.5, 0.0, 0.0]]), np.array([1.0]),
                       np.array([2.0]))
        shell = Molecule(np.zeros((1, 3)), np.array([0.0]),
                         np.array([2.0]))
        shell = sample_surface(shell, subdivisions=3, degree=2)
        probe = mol.with_surface(shell.surface)
        R = born_radii_naive_r6(probe)
        assert np.isfinite(R[0]) and R[0] > 0


class TestIntegralToRadius:
    def test_r6_floor_at_intrinsic_and_cap(self):
        from repro.constants import RGBMAX
        # Tiny integral → capped at RGBMAX; big integral → floored at r_a.
        intrinsic = np.array([1.5, 1.5])
        s = np.array([1e-9, 1e9])
        R = integral_to_radius_r6(s, intrinsic)
        assert R[0] == pytest.approx(RGBMAX)
        assert R[1] == pytest.approx(1.5)

    def test_r6_inverse_cube_law(self):
        s = np.array([FOUR_PI])  # (s/4π)^(-1/3) = 1
        assert integral_to_radius_r6(s, np.array([0.1]))[0] == \
            pytest.approx(1.0)

    def test_nonpositive_integral_gets_cap(self):
        from repro.constants import RGBMAX
        s = np.array([FOUR_PI / 8.0, -1.0])   # R=2 and a broken one
        R = integral_to_radius_r6(s, np.array([1.0, 1.0]))
        assert R[0] == pytest.approx(2.0)
        assert R[1] == pytest.approx(RGBMAX)  # deterministic cap

    def test_cap_is_partition_independent(self):
        """The fallback must not depend on which other atoms share the
        array — the property the data-distributed solver relies on."""
        s_global = np.array([FOUR_PI / 8.0, -1.0, FOUR_PI])
        intrinsic = np.ones(3)
        R_global = integral_to_radius_r6(s_global, intrinsic)
        R_alone = integral_to_radius_r6(s_global[1:2], intrinsic[1:2])
        assert R_global[1] == pytest.approx(R_alone[0])

    def test_r4_inverse_law(self):
        s = np.array([FOUR_PI / 2.0])
        assert integral_to_radius_r4(s, np.array([0.1]))[0] == \
            pytest.approx(2.0)

    def test_monotone_decreasing_in_integral(self):
        s = np.linspace(0.1, 50, 20)
        R = integral_to_radius_r6(s, np.full(20, 0.01))
        assert np.all(np.diff(R) <= 1e-12)


class TestBlockedEvaluation:
    def test_block_size_invariance(self, protein_small):
        a = born_radii_naive_r6(protein_small, block=64)
        b = born_radii_naive_r6(protein_small, block=4096)
        assert np.allclose(a, b, rtol=1e-12)

    def test_radii_at_least_intrinsic(self, protein_small):
        R = born_radii_naive_r6(protein_small)
        assert np.all(R >= protein_small.radii - 1e-12)

    def test_requires_surface(self):
        bare = Molecule(np.zeros((1, 3)), np.array([1.0]),
                        np.array([1.0]))
        with pytest.raises(ValueError, match="no surface"):
            born_radii_naive_r6(bare)
