"""Integration tests across the whole stack."""

import numpy as np
import pytest

from repro import ApproxParams, Molecule, PolarizationSolver
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.molecules import random_ligand, synthetic_protein
from repro.molecules.molecule import SurfaceSamples
from repro.molecules.transform import RigidTransform
from repro.parallel import run_fig4_simmpi


class TestPipeline:
    def test_generate_solve_compare(self):
        """The quickstart path: generate → solve → compare to naive."""
        mol = synthetic_protein(600, seed=21)
        solver = PolarizationSolver(mol, ApproxParams())
        e = solver.energy()
        ref = epol_naive(mol, born_radii_naive_r6(mol))
        assert e < 0
        assert abs(e - ref) / abs(ref) < 0.01

    def test_distributed_equals_serial_end_to_end(self):
        mol = synthetic_protein(600, seed=22)
        serial = PolarizationSolver(mol, ApproxParams()).energy()
        dist = run_fig4_simmpi(mol, ApproxParams(), processes=5,
                               threads=2)
        assert dist.energy == pytest.approx(serial, rel=1e-10)


class TestDockingAdditivity:
    def test_far_separated_complex_energy(self):
        """E_pol of two far-apart neutral molecules ≈ sum of parts plus
        a small cross term (monopole–monopole over distance)."""
        a = synthetic_protein(400, seed=23)
        b = random_ligand(30, seed=5)
        shift = RigidTransform.translation_of([200.0, 0.0, 0.0])

        bs = b.require_surface()
        b_far = Molecule(shift.apply(b.positions), b.charges, b.radii,
                         surface=SurfaceSamples(shift.apply(bs.points),
                                                bs.normals, bs.weights))
        asurf = a.require_surface()
        merged = Molecule(
            np.vstack([a.positions, b_far.positions]),
            np.concatenate([a.charges, b_far.charges]),
            np.concatenate([a.radii, b_far.radii]),
            surface=SurfaceSamples(
                np.vstack([asurf.points, b_far.surface.points]),
                np.vstack([asurf.normals, b_far.surface.normals]),
                np.concatenate([asurf.weights, b_far.surface.weights])))

        params = ApproxParams()
        e_a = PolarizationSolver(a, params).energy()
        e_b = PolarizationSolver(b_far, params).energy()
        e_ab = PolarizationSolver(merged, params).energy()
        # Cross term bounded by C·|Q_a||Q_b|/d with near-neutral charges.
        assert abs(e_ab - e_a - e_b) < 0.02 * abs(e_a)


class TestPhysicalSanity:
    def test_bigger_molecule_more_negative_energy(self):
        params = ApproxParams()
        e_small = PolarizationSolver(synthetic_protein(300, seed=1),
                                     params).energy()
        e_big = PolarizationSolver(synthetic_protein(1200, seed=1),
                                   params).energy()
        assert e_big < e_small < 0

    def test_energy_deterministic(self):
        mol = synthetic_protein(400, seed=30)
        e1 = PolarizationSolver(mol, ApproxParams()).energy()
        e2 = PolarizationSolver(mol, ApproxParams()).energy()
        assert e1 == e2
