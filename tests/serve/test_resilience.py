"""Resilience primitives: retry schedules, breaker state machine,
admission control, delay timer, and the service-level fault paths
(crash supervision, retry, hedging)."""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ApproxParams
from repro.faults import ServeFaultPlan, SlowWorker, WorkerCrash
from repro.molecules import synthetic_protein
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    DelayTimer,
    RetryPolicy,
    ServiceOverloadedError,
    SolveRequest,
    SolveService,
)


# -- RetryPolicy ---------------------------------------------------------


@given(seed=st.integers(0, 2**31 - 1),
       key=st.text(min_size=1, max_size=16),
       attempts=st.integers(2, 6))
@settings(max_examples=50, deadline=None)
def test_backoff_schedule_is_seed_deterministic(seed, key, attempts):
    """Same (seed, key) → bitwise-identical backoff schedule; a
    different seed shifts the jitter."""
    pol1 = RetryPolicy(max_attempts=attempts, seed=seed)
    pol2 = RetryPolicy(max_attempts=attempts, seed=seed)
    s1 = [pol1.backoff(key, a) for a in range(1, attempts)]
    s2 = [pol2.backoff(key, a) for a in range(1, attempts)]
    assert s1 == s2
    assert all(b > 0 for b in s1)


@given(seed=st.integers(0, 2**31 - 1),
       key=st.text(min_size=1, max_size=16),
       deadline_s=st.floats(0.001, 10.0))
@settings(max_examples=50, deadline=None)
def test_schedule_never_exceeds_deadline(seed, key, deadline_s):
    """The cumulative backoff schedule fits inside the deadline."""
    pol = RetryPolicy(max_attempts=8, seed=seed,
                      base_backoff_s=0.01, max_backoff_s=0.5)
    pauses = pol.schedule(key, deadline_s)
    assert len(pauses) <= pol.max_attempts - 1
    assert sum(pauses) <= deadline_s


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_backoff_respects_cap_and_jitter_band(seed):
    pol = RetryPolicy(max_attempts=10, seed=seed, base_backoff_s=0.05,
                      multiplier=2.0, max_backoff_s=0.2, jitter=0.1)
    for attempt in range(1, 10):
        b = pol.backoff("k", attempt)
        raw = min(pol.max_backoff_s,
                  pol.base_backoff_s * pol.multiplier ** (attempt - 1))
        assert raw * (1 - pol.jitter) <= b <= raw * (1 + pol.jitter)


def test_next_backoff_exhausts_attempts_and_deadline():
    pol = RetryPolicy(max_attempts=3, seed=1, base_backoff_s=0.05,
                      jitter=0.0)
    assert pol.next_backoff("k", 1, remaining_s=60.0) is not None
    assert pol.next_backoff("k", 3, remaining_s=60.0) is None  # budget
    # A pause that would outlive the deadline is not scheduled.
    assert pol.next_backoff("k", 1, remaining_s=0.01) is None


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(hedge_after_s=0.0)


# -- CircuitBreaker ------------------------------------------------------


class _Clock:
    """Scripted monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def test_breaker_full_cycle_closed_open_half_open_closed():
    clock = _Clock()
    pol = BreakerPolicy(window=4, failure_threshold=0.5, min_samples=4,
                        open_seconds=10.0, half_open_probes=2)
    br = CircuitBreaker(pol, clock=clock)
    assert br.state == CircuitBreaker.CLOSED

    # Two failures in four samples trips the 50% threshold.
    br.record_success()
    br.record_failure()
    br.record_success()
    assert br.state == CircuitBreaker.CLOSED
    br.record_failure()
    assert br.state == CircuitBreaker.OPEN
    assert br.open_count == 1
    assert not br.allow()
    assert br.short_circuited == 1

    # Cooldown elapses → half-open with a bounded probe budget.
    clock.now += 10.0
    assert br.state == CircuitBreaker.HALF_OPEN
    assert br.allow()
    assert br.allow()
    assert not br.allow()  # probe budget spent

    # Both probes succeed → closed again.
    br.record_success()
    br.record_success()
    assert br.state == CircuitBreaker.CLOSED
    assert br.allow()


def test_breaker_half_open_failure_reopens():
    clock = _Clock()
    pol = BreakerPolicy(window=2, failure_threshold=1.0, min_samples=2,
                        open_seconds=5.0, half_open_probes=1)
    br = CircuitBreaker(pol, clock=clock)
    br.record_failure()
    br.record_failure()
    assert br.state == CircuitBreaker.OPEN
    clock.now += 5.0
    assert br.allow()  # the half-open probe
    br.record_failure()
    assert br.state == CircuitBreaker.OPEN
    assert br.open_count == 2
    # The fresh open starts a fresh cooldown from the scripted now.
    assert not br.allow()


def test_breaker_needs_min_samples():
    br = CircuitBreaker(BreakerPolicy(window=10, failure_threshold=0.5,
                                      min_samples=5), clock=_Clock())
    for _ in range(4):
        br.record_failure()
    assert br.state == CircuitBreaker.CLOSED  # below min_samples


# -- AdmissionController -------------------------------------------------


def test_admission_depth_limit_sheds_with_hint():
    ctl = AdmissionController(AdmissionPolicy(max_queue_depth=3),
                              workers=2)
    ctl.check(2)  # below the limit: admitted
    ctl.note_service_seconds(0.2)
    with pytest.raises(ServiceOverloadedError) as exc:
        ctl.check(3)  # at the limit: shed
    assert exc.value.retry_after_s > 0
    assert exc.value.depth == 3
    assert exc.value.limit == 3
    assert "retry" in str(exc.value).lower()
    assert ctl.shed_count == 1


def test_admission_wait_slo_uses_service_ema():
    ctl = AdmissionController(AdmissionPolicy(max_wait_seconds=1.0),
                              workers=1)
    # No EMA yet → no wait estimate → admit anything.
    ctl.check(50)
    ctl.note_service_seconds(0.5)  # EMA: 0.5 s/request, 1 worker
    ctl.check(2)  # projected 1.0 s == SLO: admitted
    with pytest.raises(ServiceOverloadedError):
        ctl.check(3)  # projected 1.5 s > 1.0 s SLO


# -- DelayTimer ----------------------------------------------------------


def test_delay_timer_runs_callbacks_in_due_order():
    timer = DelayTimer(name="t-order")
    fired = []
    done = threading.Event()
    timer.schedule(0.08, lambda: fired.append("late"))
    timer.schedule(0.01, lambda: (fired.append("early"),
                                  done.set())[-1])
    assert done.wait(5.0)
    deadline = time.monotonic() + 5.0
    while len(fired) < 2 and time.monotonic() < deadline:
        time.sleep(0.01)
    timer.close()
    assert fired == ["early", "late"]


def test_delay_timer_close_flushes_pending_synchronously():
    timer = DelayTimer(name="t-flush")
    fired = []
    timer.schedule(30.0, lambda: fired.append("a"))
    timer.schedule(60.0, lambda: fired.append("b"))
    t0 = time.monotonic()
    timer.close()  # must not wait the 30 s — flush inline
    assert time.monotonic() - t0 < 5.0
    assert fired == ["a", "b"]
    # Post-close schedules run inline rather than silently dropping.
    timer.schedule(30.0, lambda: fired.append("c"))
    assert fired == ["a", "b", "c"]


def test_delay_timer_counts_callback_errors():
    timer = DelayTimer(name="t-err")
    done = threading.Event()

    def boom():
        done.set()
        raise RuntimeError("callback boom")

    timer.schedule(0.0, boom)
    assert done.wait(5.0)
    timer.close()
    assert timer.callback_errors == 1


# -- service-level fault paths ------------------------------------------


def _req(key: str, seed: int = 0, atoms: int = 60) -> SolveRequest:
    return SolveRequest(molecule=synthetic_protein(atoms, seed=seed),
                        params=ApproxParams(),
                        idempotency_key=key)


def test_worker_crash_requeues_and_replacement_finishes():
    plan = ServeFaultPlan([WorkerCrash(worker=0, batch_seq=0,
                                       after_jobs=0)], seed=7)
    svc = SolveService(workers=1, batch_size=2, queue_capacity=8,
                       fault_plan=plan)
    t = svc.submit(_req("crash-unit-0"))
    r = t.result(timeout=60.0)
    svc.close()
    st = svc.stats()
    assert r.status == "ok"
    assert r.attempt == 2  # one crash requeue
    assert st.worker_crashes == 1
    assert st.worker_restarts == 1
    assert st.requeued == 1
    assert svc.pending == 0


def test_hedge_beats_straggler_and_cancels_loser():
    plan = ServeFaultPlan(
        [SlowWorker(seconds=30.0, key_prefix="hsvc-", attempt=1)],
        seed=3)
    svc = SolveService(workers=2, batch_size=1, queue_capacity=8,
                       fault_plan=plan,
                       retry=RetryPolicy(max_attempts=2, seed=3,
                                         hedge_after_s=0.1))
    t0 = time.monotonic()
    t = svc.submit(_req("hsvc-0", seed=5))
    r = t.result(timeout=60.0)
    wall = time.monotonic() - t0
    svc.close()
    st = svc.stats()
    assert r.status == "ok"
    assert r.attempt == 2
    assert wall < 20.0  # nobody waited out the 30 s straggler
    assert st.hedges == 1
    assert st.hedge_wins == 1
    assert st.hedge_cancelled == 1


def test_shed_ahead_of_queue_full():
    svc = SolveService(workers=1, batch_size=1, queue_capacity=64,
                       fault_plan=ServeFaultPlan(
                           [SlowWorker(seconds=0.5,
                                       key_prefix="shed-hold-")],
                           seed=1),
                       admission=AdmissionPolicy(max_queue_depth=2))
    t0 = svc.submit(_req("shed-hold-0", seed=9))
    svc._queue.wait_empty(timeout=30.0)
    t1 = svc.submit(_req("shed-1", seed=10))
    t2 = svc.submit(_req("shed-2", seed=11))
    with pytest.raises(ServiceOverloadedError):
        svc.submit(_req("shed-3", seed=12))
    svc.drain(timeout=60.0)
    svc.close()
    st = svc.stats()
    assert st.shed == 1
    assert st.rejected == 0  # shed fired before QueueFullError could
    for t in (t0, t1, t2):
        assert t.result(timeout=0.0).status == "ok"
