"""Bounded priority queue: ordering, backpressure, close semantics."""

from __future__ import annotations

import threading

import pytest

from repro.serve import BoundedPriorityQueue, QueueFullError, \
    ServiceClosedError


def test_priority_order_lowest_first():
    q = BoundedPriorityQueue(8)
    q.put("low", priority=2)
    q.put("high", priority=0)
    q.put("mid", priority=1)
    assert [q.get(timeout=0.1) for _ in range(3)] \
        == ["high", "mid", "low"]


def test_fifo_within_a_priority():
    q = BoundedPriorityQueue(8)
    for item in "abc":
        q.put(item, priority=1)
    assert [q.get(timeout=0.1) for _ in range(3)] == ["a", "b", "c"]


def test_full_queue_raises_queue_full():
    q = BoundedPriorityQueue(2)
    q.put(1)
    q.put(2)
    with pytest.raises(QueueFullError) as exc:
        q.put(3)
    assert exc.value.depth == 2
    assert exc.value.capacity == 2
    assert "2 of 2" in str(exc.value)


def test_wait_not_full_times_out_and_unblocks():
    q = BoundedPriorityQueue(1)
    q.put("x")
    assert q.wait_not_full(timeout=0.05) is False
    drained = threading.Event()

    def consumer():
        q.get(timeout=1.0)
        drained.set()

    t = threading.Thread(target=consumer)
    t.start()
    assert q.wait_not_full(timeout=2.0) is True
    t.join()
    assert drained.is_set()


def test_put_after_close_raises():
    q = BoundedPriorityQueue(4)
    q.close()
    with pytest.raises(ServiceClosedError):
        q.put("late")


def test_close_drains_accepted_items():
    q = BoundedPriorityQueue(4)
    q.put("a")
    q.put("b")
    q.close()
    assert q.get(timeout=0.1) == "a"
    assert q.get(timeout=0.1) == "b"
    assert q.get(timeout=0.1) is None  # closed + empty → sentinel


def test_get_batch_takes_up_to_max_items():
    q = BoundedPriorityQueue(8)
    for i in range(5):
        q.put(i)
    batch = q.get_batch(3, timeout=0.1)
    assert batch == [0, 1, 2]
    assert q.get_batch(3, timeout=0.1) == [3, 4]


def test_get_times_out_on_empty_queue():
    q = BoundedPriorityQueue(2)
    assert q.get(timeout=0.01) is None


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedPriorityQueue(0)
