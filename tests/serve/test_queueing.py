"""Bounded priority queue: ordering, backpressure, close semantics."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import BoundedPriorityQueue, QueueFullError, \
    ServiceClosedError


@pytest.fixture(params=["bare", "witnessed"])
def maybe_witness(request):
    """Run a test twice: on raw locks and under the LockWitness (the
    witnessed pass also asserts the runtime order graph is acyclic)."""
    if request.param == "bare":
        yield None
        return
    from repro.obs import lockwitness

    witness = lockwitness.install(lockwitness.LockWitness())
    try:
        yield witness
    finally:
        lockwitness.uninstall()
        witness.assert_acyclic()


def test_priority_order_lowest_first():
    q = BoundedPriorityQueue(8)
    q.put("low", priority=2)
    q.put("high", priority=0)
    q.put("mid", priority=1)
    assert [q.get(timeout=0.1) for _ in range(3)] \
        == ["high", "mid", "low"]


def test_fifo_within_a_priority():
    q = BoundedPriorityQueue(8)
    for item in "abc":
        q.put(item, priority=1)
    assert [q.get(timeout=0.1) for _ in range(3)] == ["a", "b", "c"]


def test_full_queue_raises_queue_full():
    q = BoundedPriorityQueue(2)
    q.put(1)
    q.put(2)
    with pytest.raises(QueueFullError) as exc:
        q.put(3)
    assert exc.value.depth == 2
    assert exc.value.capacity == 2
    assert "2 of 2" in str(exc.value)


def test_wait_not_full_times_out_and_unblocks():
    q = BoundedPriorityQueue(1)
    q.put("x")
    assert q.wait_not_full(timeout=0.05) is False
    drained = threading.Event()

    def consumer():
        q.get(timeout=1.0)
        drained.set()

    t = threading.Thread(target=consumer)
    t.start()
    assert q.wait_not_full(timeout=2.0) is True
    t.join()
    assert drained.is_set()


def test_put_after_close_raises():
    q = BoundedPriorityQueue(4)
    q.close()
    with pytest.raises(ServiceClosedError):
        q.put("late")


def test_close_drains_accepted_items():
    q = BoundedPriorityQueue(4)
    q.put("a")
    q.put("b")
    q.close()
    assert q.get(timeout=0.1) == "a"
    assert q.get(timeout=0.1) == "b"
    assert q.get(timeout=0.1) is None  # closed + empty → sentinel


def test_get_batch_takes_up_to_max_items():
    q = BoundedPriorityQueue(8)
    for i in range(5):
        q.put(i)
    batch = q.get_batch(3, timeout=0.1)
    assert batch == [0, 1, 2]
    assert q.get_batch(3, timeout=0.1) == [3, 4]


def test_get_times_out_on_empty_queue():
    q = BoundedPriorityQueue(2)
    assert q.get(timeout=0.01) is None


@pytest.mark.parametrize("capacity", [0, -1])
def test_capacity_must_be_positive(capacity):
    with pytest.raises(ValueError):
        BoundedPriorityQueue(capacity)


def test_close_unblocks_waiting_getter(maybe_witness):
    q = BoundedPriorityQueue(4)
    got = []

    def getter():
        got.append(q.get(timeout=30.0))

    t = threading.Thread(target=getter)
    t.start()
    time.sleep(0.05)  # let the getter reach the condition wait
    t0 = time.monotonic()
    q.close()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert time.monotonic() - t0 < 5.0  # woke on notify, not timeout
    assert got == [None]  # closed + empty → shutdown sentinel


def test_close_unblocks_wait_not_full(maybe_witness):
    q = BoundedPriorityQueue(1)
    q.put("occupies the only slot")
    outcome = []

    def waiter():
        try:
            outcome.append(q.wait_not_full(timeout=30.0))
        except ServiceClosedError:
            outcome.append("closed")

    t = threading.Thread(target=waiter)
    t.start()
    time.sleep(0.05)
    q.close()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert outcome == ["closed"]


def test_capacity_one_cycles_through_full_and_empty(maybe_witness):
    q = BoundedPriorityQueue(1)
    for item in range(3):
        q.put(item)
        with pytest.raises(QueueFullError):
            q.put("overflow")
        assert q.get(timeout=0.1) == item
    assert q.get(timeout=0.01) is None  # empty again


def test_concurrent_producers_consumers_under_witness(maybe_witness):
    q = BoundedPriorityQueue(8)
    per_producer, consumed = 25, []
    sink_lock = threading.Lock()

    def producer(base):
        for i in range(per_producer):
            while True:
                try:
                    q.put((base, i))
                    break
                except QueueFullError:
                    q.wait_not_full(timeout=5.0)

    def consumer():
        while True:
            item = q.get(timeout=5.0)
            if item is None:
                return
            with sink_lock:
                consumed.append(item)

    producers = [threading.Thread(target=producer, args=(b,))
                 for b in range(2)]
    consumers = [threading.Thread(target=consumer) for _ in range(2)]
    for t in producers + consumers:
        t.start()
    for t in producers:
        t.join(timeout=30.0)
    q.close()
    for t in consumers:
        t.join(timeout=30.0)
    assert not any(t.is_alive() for t in producers + consumers)
    assert sorted(consumed) == sorted(
        (b, i) for b in range(2) for i in range(per_producer))
    if maybe_witness is not None:
        assert "serve.queue._lock" in maybe_witness.lock_names()


# -- requeue / wait_empty (resilience support surface) ------------------


def test_requeue_bypasses_capacity():
    q = BoundedPriorityQueue(1)
    q.put("a")
    # Accepted work being put back (crash recovery, retry) must never
    # bounce off the capacity ceiling it already passed once.
    q.requeue("b")
    assert q.get(timeout=0.1) in ("a", "b")
    assert q.get(timeout=0.1) in ("a", "b")


def test_requeue_accepted_after_close():
    q = BoundedPriorityQueue(4)
    q.close()
    with pytest.raises(ServiceClosedError):
        q.put("rejected")
    # requeue is exempt: the item was admitted before the close and
    # close() guarantees accepted items drain.
    q.requeue("recovered")
    assert q.get(timeout=0.1) == "recovered"


def test_wait_empty_blocks_until_drained():
    q = BoundedPriorityQueue(4)
    q.put("x")
    assert not q.wait_empty(timeout=0.05)
    assert q.get(timeout=0.1) == "x"
    assert q.wait_empty(timeout=1.0)


def test_requeue_wakes_blocked_getter(maybe_witness):
    q = BoundedPriorityQueue(2)
    got = []

    def getter():
        got.append(q.get(timeout=30.0))

    t = threading.Thread(target=getter, name="requeue-getter")
    t.start()
    time.sleep(0.05)  # let the getter block in get()
    q.requeue("retry-item")
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert got == ["retry-item"]


def test_close_with_requeued_retry_never_strands(maybe_witness):
    """A worker blocked in get() while a retry item is requeued during
    close must still receive the item — accepted work never strands."""
    q = BoundedPriorityQueue(2)
    got = []

    def worker():
        # First pop blocks; close() must hand it the requeued retry
        # item, and the next pop must observe the drained-closed None.
        got.append(q.get(timeout=30.0))
        got.append(q.get(timeout=30.0))

    t = threading.Thread(target=worker, name="close-requeue-worker")
    t.start()
    time.sleep(0.05)  # park the worker inside get()
    q.requeue("retried-job")
    q.close()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert got == ["retried-job", None]
