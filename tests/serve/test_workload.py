"""Workload loading: tenant attribution survives every expansion."""

from __future__ import annotations

import json

import pytest

from repro.edge import workload_bodies
from repro.serve import load_workload, synthetic_workload

TRACE = {
    "requests": [
        {"atoms": 80, "seed": 1, "tenant": "acme", "repeat": 3,
         "eps_epol": 0.5},
        {"atoms": 90, "seed": 2},                      # default tenant
        {"atoms": 80, "seed": 1, "tenant": "zed", "repeat": 2,
         "priority": 1},
    ],
}


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(TRACE), encoding="utf-8")
    return path


def test_tenant_round_trips_through_repeat_expansion(trace_file):
    requests = load_workload(trace_file)
    assert [r.tenant for r in requests] == \
        ["acme"] * 3 + ["default"] + ["zed"] * 2
    # Repeat-expanded copies are the *same* request object — one
    # molecule build, identical fingerprints, so they coalesce.
    assert requests[0] is requests[1] is requests[2]
    # Tenant is attribution only: acme's and zed's entries share the
    # (atoms=80, seed=1) recipe, so they share one molecule build —
    # cross-tenant coalescing stays content-based.
    assert requests[0].molecule is requests[5].molecule
    assert requests[0].tenant != requests[5].tenant


def test_workload_bodies_mirrors_load_workload(trace_file):
    requests = load_workload(trace_file)
    bodies = workload_bodies(trace_file)
    assert len(bodies) == len(requests)
    assert [t for t, _ in bodies] == [r.tenant for r in requests]
    for (tenant, body), req in zip(bodies, requests):
        # The body is the pure solve schema: expansion/attribution
        # keys are stripped, recipe keys are preserved verbatim.
        assert "repeat" not in body and "tenant" not in body
        assert int(body.get("priority", 0)) == req.priority


def test_workload_bodies_repeats_are_independent_dicts(trace_file):
    """Repeat expansion must copy the body per entry — mutating one
    replayed body must not bleed into its siblings."""
    bodies = workload_bodies(trace_file)
    bodies[0][1]["seed"] = 999
    assert bodies[1][1]["seed"] == 1
    assert bodies[2][1]["seed"] == 1


def test_synthetic_workload_tenants_draw_is_appended():
    plain = synthetic_workload(12, seed=9, atoms=60)
    tagged = synthetic_workload(12, seed=9, atoms=60,
                                tenants=["a", "b", "c"])
    assert all(r.tenant == "default" for r in plain)
    assert {r.tenant for r in tagged} <= {"a", "b", "c"}
    assert len({r.tenant for r in tagged}) > 1
    # The tenant draw happens after the original draws, so the rest of
    # the stream is unchanged — same molecules, ε grid, priorities.
    for p, t in zip(plain, tagged):
        assert p.molecule.natoms == t.molecule.natoms
        assert p.params.eps_epol == t.params.eps_epol
        assert p.priority == t.priority


def test_bad_workload_files_are_rejected(tmp_path):
    empty = tmp_path / "empty.json"
    empty.write_text("[]", encoding="utf-8")
    with pytest.raises(ValueError):
        load_workload(empty)
    with pytest.raises(ValueError):
        workload_bodies(empty)
    noatoms = tmp_path / "noatoms.json"
    noatoms.write_text('[{"seed": 1}]', encoding="utf-8")
    with pytest.raises(ValueError):
        load_workload(noatoms)
    with pytest.raises(ValueError):
        workload_bodies(noatoms)
