"""Multi-worker serve stress under the LockWitness.

The acceptance gate for the RPR2xx/LockWitness work: a 4-worker
service run must complete with zero failures and an *acyclic*
witnessed lock-order graph, and the witness-off path must add no
instrumentation to the serve stack at all (raw ``threading``
primitives — the repo's <2% overhead bound holds by construction).
"""

from __future__ import annotations

import threading

from repro.obs.lockwitness import WitnessedLock
from repro.serve import SolveRequest, SolveService
from repro.serve.workload import synthetic_workload


def _run_workload(service, requests):
    tickets = [service.submit(r) for r in requests]
    assert service.drain(timeout=300.0)
    return [t.result(timeout=10.0) for t in tickets]


def test_four_worker_stress_under_witness(lock_witness):
    service = SolveService(workers=4, queue_capacity=64, batch_size=4,
                           cache_bytes=1 << 26)
    try:
        requests = synthetic_workload(16, seed=3, molecules=2,
                                      atoms=120)
        results = _run_workload(service, requests)
    finally:
        service.close()
    assert len(results) == 16
    assert all(r.status in ("ok", "degraded") for r in results), \
        [r.error for r in results if r.error]
    # Every serve-stack lock was built through the witness factories…
    names = lock_witness.lock_names()
    assert "serve.service._lock" in names
    assert "serve.queue._lock" in names
    assert "serve.cache._lock" in names
    # …and the observed acquisition order is a DAG (the fixture's
    # teardown re-asserts this; stated here so a failure points at
    # the stress run, not the teardown).
    assert lock_witness.cycles() == []


def test_witnessed_run_matches_bare_run_bitwise(protein_small,
                                                lock_witness):
    witnessed = SolveService(workers=2, queue_capacity=16,
                             cache_bytes=1 << 26)
    try:
        assert isinstance(witnessed._lock, WitnessedLock)
        result = _run_workload(
            witnessed, [SolveRequest(molecule=protein_small)])[0]
    finally:
        witnessed.close()
    assert result.status == "ok"
    # Instrumentation must never change the physics.
    from repro.obs import lockwitness as lw
    lw.uninstall()
    bare = SolveService(workers=2, queue_capacity=16,
                        cache_bytes=1 << 26)
    try:
        ref = _run_workload(
            bare, [SolveRequest(molecule=protein_small)])[0]
    finally:
        bare.close()
    assert ref.energy == result.energy  # bitwise, not approx


def test_witness_off_serve_stack_uses_raw_primitives():
    """Disabled-path overhead contract: without an installed witness
    the serve stack is built on *raw* threading objects — identical
    types, zero added per-acquisition work."""
    service = SolveService(workers=1, queue_capacity=4)
    try:
        raw_lock_type = type(threading.Lock())
        assert type(service._lock) is raw_lock_type
        assert type(service._queue._lock) is raw_lock_type
        assert type(service.cache._lock) is raw_lock_type
        assert type(service.cache._disk_lock) is raw_lock_type
        assert isinstance(service._idle, threading.Condition)
    finally:
        service.close()
