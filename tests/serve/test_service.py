"""SolveService end-to-end: warm == cold bitwise, coalescing,
invalidation, deadlines, backpressure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.molecules import synthetic_protein
from repro.serve import (
    QueueFullError,
    ServiceClosedError,
    SolveRequest,
    SolveService,
)


@pytest.fixture()
def service():
    svc = SolveService(workers=2, queue_capacity=32, batch_size=2,
                       cache_bytes=1 << 26)
    yield svc
    svc.close()


def _solve(service, request, timeout=120.0):
    ticket = service.submit(request)
    return ticket.result(timeout=timeout)


def test_warm_repeat_is_bitwise_identical(service, protein_small):
    req = SolveRequest(molecule=protein_small)
    cold = _solve(service, req)
    assert cold.status == "ok"
    assert cold.cache == "cold"
    service.drain(timeout=60.0)
    warm = _solve(service, SolveRequest(molecule=protein_small))
    assert warm.cache == "epol"
    assert warm.energy == cold.energy  # bitwise, not approx
    assert np.array_equal(warm.born_radii, cold.born_radii)


def test_eps_epol_change_reuses_born_level(service, protein_small):
    cold = _solve(service, SolveRequest(molecule=protein_small))
    service.drain(timeout=60.0)
    shifted = _solve(service, SolveRequest(
        molecule=protein_small,
        params=ApproxParams(eps_epol=0.5)))
    assert shifted.status == "ok"
    # ε_epol only steers the energy pass: Born radii come warm…
    assert shifted.cache == "born"
    assert np.array_equal(shifted.born_radii, cold.born_radii)


def test_molecule_change_misses_every_level(service, protein_small):
    _solve(service, SolveRequest(molecule=protein_small))
    service.drain(timeout=60.0)
    other = synthetic_protein(420, seed=9)
    res = _solve(service, SolveRequest(molecule=other))
    assert res.cache == "cold"
    assert res.status == "ok"


def test_naive_method_unaffected_by_tree_cache(service, protein_small):
    res = _solve(service, SolveRequest(molecule=protein_small,
                                       method="naive"))
    assert res.status == "ok" and res.cache == "cold"


def test_coalescing_returns_one_computation_to_all(protein_small,
                                                   protein_medium):
    svc = SolveService(workers=1, queue_capacity=32, batch_size=1)
    try:
        # Occupy the single worker so the duplicates stay queued…
        blocker = svc.submit(SolveRequest(molecule=protein_medium))
        dup = SolveRequest(molecule=protein_small)
        t1 = svc.submit(dup)
        t2 = svc.submit(dup)
        assert t2 is t1  # the same ticket, not merely an equal one
        r1, r2 = t1.result(timeout=120.0), t2.result(timeout=120.0)
        assert r1 is r2
        assert svc.stats().coalesced == 1
        blocker.result(timeout=120.0)
    finally:
        svc.close()


def test_explicit_idempotency_key_coalesces(protein_small,
                                            protein_medium):
    svc = SolveService(workers=1, queue_capacity=32, batch_size=1)
    try:
        svc.submit(SolveRequest(molecule=protein_medium))
        t1 = svc.submit(SolveRequest(molecule=protein_small,
                                     idempotency_key="tenant-a/job-1"))
        t2 = svc.submit(SolveRequest(molecule=protein_small,
                                     params=ApproxParams(eps_epol=0.5),
                                     idempotency_key="tenant-a/job-1"))
        assert t2 is t1
    finally:
        svc.close()


def test_queue_saturation_raises_queue_full(protein_small,
                                            protein_medium):
    svc = SolveService(workers=1, queue_capacity=1, batch_size=1)
    try:
        svc.submit(SolveRequest(molecule=protein_medium))  # worker busy
        svc._queue.wait_not_full(timeout=10.0)  # worker picked it up
        svc.submit(SolveRequest(molecule=protein_small))   # fills slot
        with pytest.raises(QueueFullError):
            svc.submit(SolveRequest(molecule=protein_small,
                                    params=ApproxParams(eps_epol=0.7)))
        assert svc.stats().rejected == 1
    finally:
        svc.close()


def test_unexpected_exception_is_failed_result_not_dead_worker(
        protein_small, monkeypatch):
    svc = SolveService(workers=1, queue_capacity=8, batch_size=4)
    try:
        orig = svc._solve
        calls = {"n": 0}

        def flaky(req, key):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("disk tier exploded")
            return orig(req, key)

        monkeypatch.setattr(svc, "_solve", flaky)
        bad = svc.submit(SolveRequest(molecule=protein_small))
        good = svc.submit(SolveRequest(molecule=protein_small,
                                       params=ApproxParams(eps_epol=0.5)))
        r_bad = bad.result(timeout=120.0)
        assert r_bad.status == "failed"
        assert "OSError" in r_bad.error
        # The worker thread survived and the batch-mate still ran.
        r_good = good.result(timeout=120.0)
        assert r_good.status == "ok"
        assert svc.drain(timeout=30.0)
        stats = svc.stats()
        assert stats.failed == 1 and stats.completed == 1
    finally:
        svc.close()


def test_rejected_submit_resolves_coalesced_ticket(
        protein_small, protein_medium, monkeypatch):
    svc = SolveService(workers=1, queue_capacity=1, batch_size=1)
    try:
        blocker = svc.submit(SolveRequest(molecule=protein_medium))
        svc._queue.wait_not_full(timeout=10.0)  # worker picked it up
        svc.submit(SolveRequest(molecule=protein_small))  # fills slot
        dup = SolveRequest(molecule=protein_small,
                           params=ApproxParams(eps_epol=0.7))
        coalesced = []
        orig_put = svc._put_with_wait

        def racing_put(job, priority, wait_timeout):
            # A concurrent submitter coalesces onto the just-published
            # ticket in the window before the put is rejected…
            coalesced.append(svc.submit(dup))
            orig_put(job, priority, wait_timeout)

        monkeypatch.setattr(svc, "_put_with_wait", racing_put)
        with pytest.raises(QueueFullError):
            svc.submit(dup)
        # …and must still reach a terminal result, never hang.
        res = coalesced[0].result(timeout=10.0)
        assert res.status == "failed"
        assert "queue full" in res.error
        blocker.result(timeout=120.0)
        assert svc.drain(timeout=60.0)  # withdrawn job left no debt
        assert svc._pending == 0
    finally:
        svc.close()


def test_expired_deadline_is_a_status_not_an_exception(protein_small,
                                                       protein_medium):
    svc = SolveService(workers=1, queue_capacity=8, batch_size=1)
    try:
        svc.submit(SolveRequest(molecule=protein_medium))  # worker busy
        late = svc.submit(SolveRequest(molecule=protein_small,
                                       deadline_s=1e-4))
        res = late.result(timeout=120.0)
        assert res.status == "expired"
        assert not res.ok
        assert res.energy is None
    finally:
        svc.close()


def test_submit_after_close_raises(protein_small):
    svc = SolveService(workers=1)
    svc.close()
    with pytest.raises(ServiceClosedError):
        svc.submit(SolveRequest(molecule=protein_small))


def test_disk_tier_survives_restart(tmp_path, protein_small):
    with SolveService(workers=1, cache_dir=str(tmp_path)) as first:
        cold = _solve(first, SolveRequest(molecule=protein_small))
    with SolveService(workers=1, cache_dir=str(tmp_path)) as revived:
        warm = _solve(revived, SolveRequest(molecule=protein_small))
    assert warm.cache == "epol"
    assert warm.energy == cold.energy
    assert np.array_equal(warm.born_radii, cold.born_radii)


def test_stats_quantiles_and_levels(service, protein_small):
    for _ in range(2):
        _solve(service, SolveRequest(molecule=protein_small))
        service.drain(timeout=60.0)
    stats = service.stats()
    assert stats.completed == 2
    assert stats.by_level.get("cold") == 1
    assert stats.by_level.get("epol") == 1
    assert stats.service_p99 >= stats.service_p50 >= 0.0
    assert 0.0 < stats.hit_rate <= 1.0


# -- cancellation + completion callbacks (the fleet substrate) -----------


def test_cancel_unresolved_ticket_wins_and_counts(protein_small):
    from repro.faults import ServeFaultPlan, SlowWorker
    plan = ServeFaultPlan([SlowWorker(seconds=30.0, worker=0,
                                      key_prefix="held")], seed=0)
    with SolveService(workers=1, fault_plan=plan) as svc:
        ticket = svc.submit(SolveRequest(molecule=protein_small,
                                         idempotency_key="held"))
        assert svc.cancel("held", reason="test revoke")
        res = ticket.result(timeout=30.0)   # cancel wakes the stall
        assert res.status == "failed"
        assert "test revoke" in res.error
        svc.drain(timeout=60.0)
        assert svc.stats().cancelled == 1


def test_cancel_after_delivery_loses(protein_small):
    with SolveService(workers=1) as svc:
        ticket = svc.submit(SolveRequest(molecule=protein_small,
                                         idempotency_key="done-first"))
        assert ticket.result(timeout=120.0).status == "ok"
        assert not svc.cancel("done-first")
        assert svc.stats().cancelled == 0


def test_cancel_unknown_key_is_false(protein_small):
    with SolveService(workers=1) as svc:
        assert not svc.cancel("never-submitted")


def test_on_done_fires_once_after_resolution(protein_small):
    calls = []
    with SolveService(workers=1) as svc:
        ticket = svc.submit(SolveRequest(molecule=protein_small))
        ticket.on_done(calls.append)
        ticket.result(timeout=120.0)
    assert len(calls) == 1 and calls[0] is ticket
    # registering on an already-done ticket fires immediately
    ticket.on_done(calls.append)
    assert len(calls) == 2
