"""Artifact cache: layered keys, LRU budget, disk tier, corruption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.molecules.molecule import Molecule
from repro.serve import (
    ArtifactCache,
    CachedArrays,
    born_key,
    epol_key,
    surface_key,
    trees_key,
)


def _arr(n: int, fill: float) -> np.ndarray:
    return np.full(n, fill, dtype=np.float64)


# -- layered keys -------------------------------------------------------


def test_epol_key_changes_with_eps_epol(protein_small):
    p = ApproxParams()
    assert epol_key(protein_small, p, "octree", 1.0) \
        != epol_key(protein_small, p.with_(eps_epol=0.5), "octree", 1.0)


def test_born_key_ignores_eps_epol_and_charges(protein_small):
    p = ApproxParams()
    assert born_key(protein_small, p, "octree") \
        == born_key(protein_small, p.with_(eps_epol=0.5), "octree")
    recharged = Molecule(protein_small.positions,
                         -protein_small.charges,
                         protein_small.radii,
                         surface=protein_small.surface)
    assert born_key(protein_small, p, "octree") \
        == born_key(recharged, p, "octree")
    # …but the full-result key sees both changes.
    assert epol_key(protein_small, p, "octree", 1.0) \
        != epol_key(recharged, p, "octree", 1.0)


def test_born_key_changes_with_eps_born_and_method(protein_small):
    p = ApproxParams()
    assert born_key(protein_small, p, "octree") \
        != born_key(protein_small, p.with_(eps_born=0.5), "octree")
    assert born_key(protein_small, p, "octree") \
        != born_key(protein_small, p, "dualtree")


def test_trees_key_ignores_every_eps(protein_small):
    p = ApproxParams()
    assert trees_key(protein_small, p) \
        == trees_key(protein_small,
                     p.with_(eps_born=0.3, eps_epol=0.3))
    assert trees_key(protein_small, p) \
        != trees_key(protein_small, p.with_(leaf_size=2))


def test_keys_change_with_molecule(protein_small, protein_medium):
    p = ApproxParams()
    for fn in (surface_key,):
        assert fn(protein_small) != fn(protein_medium)
    assert trees_key(protein_small, p) != trees_key(protein_medium, p)
    assert born_key(protein_small, p, "octree") \
        != born_key(protein_medium, p, "octree")


# -- memory tier --------------------------------------------------------


def test_lru_evicts_oldest_under_byte_budget():
    cache = ArtifactCache(max_bytes=3000)  # three 1000-byte arrays
    for i in range(4):
        cache.put(f"born-{i}", _arr(125, float(i)))  # 1000 B each
    stats = cache.stats()
    assert stats.evictions == 1
    assert cache.get("born-0") is None  # the oldest went
    assert cache.get("born-3") is not None


def test_get_refreshes_recency():
    cache = ArtifactCache(max_bytes=3000)
    for i in range(3):
        cache.put(f"born-{i}", _arr(125, float(i)))
    assert cache.get("born-0") is not None  # touch the oldest
    cache.put("born-3", _arr(125, 3.0))     # forces one eviction
    assert cache.get("born-0") is not None  # survived (recently used)
    assert cache.get("born-1") is None      # the true LRU went


def test_put_same_key_replaces_without_double_counting():
    cache = ArtifactCache(max_bytes=10_000)
    cache.put("epol-a", _arr(125, 1.0))
    cache.put("epol-a", _arr(250, 2.0))
    stats = cache.stats()
    assert stats.entries == 1
    assert stats.bytes == 2000


def test_eviction_counter_names_the_evicted_layer():
    import repro.obs as obs
    obs.enable(reset=True)
    try:
        cache = ArtifactCache(max_bytes=1000)
        cache.put("born-a", _arr(125, 1.0))  # 1000 B fills the budget
        cache.put("epol-b", _arr(125, 2.0))  # evicts born-a
        assert obs.registry.counter(
            "serve.cache.evictions.born").value == 1
        assert obs.registry.counter(
            "serve.cache.evictions.epol").value == 0
    finally:
        obs.disable()


def test_hit_rate_accounting():
    cache = ArtifactCache(max_bytes=10_000)
    cache.put("trees-a", _arr(10, 1.0))
    assert cache.get("trees-a") is not None
    assert cache.get("trees-missing") is None
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 1
    assert stats.hit_rate == pytest.approx(0.5)


# -- disk tier ----------------------------------------------------------


def test_disk_round_trip_is_bitwise(tmp_path):
    rng = np.random.default_rng(7)
    value = CachedArrays({"radii": rng.normal(size=64)},
                         meta={"method": "octree"})
    warm = ArtifactCache(max_bytes=1 << 20, disk_dir=tmp_path)
    warm.put("born-deadbeef", value)
    # A fresh instance (restarted service) re-warms from disk.
    cold = ArtifactCache(max_bytes=1 << 20, disk_dir=tmp_path)
    hit = cold.get("born-deadbeef")
    assert isinstance(hit, CachedArrays)
    assert np.array_equal(hit.arrays["radii"], value.arrays["radii"])
    assert hit.meta["method"] == "octree"
    stats = cold.stats()
    assert stats.disk_hits == 1 and stats.hits == 1


def test_corrupt_disk_entry_is_counted_miss(tmp_path):
    cache = ArtifactCache(max_bytes=1 << 20, disk_dir=tmp_path)
    cache.put("born-cafe", CachedArrays({"radii": _arr(16, 1.0)}))
    for ckpt in tmp_path.glob("*.ckpt"):
        ckpt.write_bytes(b"REPRO-CKPT\x01garbage")
    fresh = ArtifactCache(max_bytes=1 << 20, disk_dir=tmp_path)
    assert fresh.get("born-cafe") is None
    assert fresh.stats().disk_errors == 1


def test_disk_budget_drops_oldest_files(tmp_path):
    cache = ArtifactCache(max_bytes=1 << 20, disk_dir=tmp_path,
                          disk_max_bytes=1)  # everything over budget
    cache.put("born-one", CachedArrays({"radii": _arr(16, 1.0)}))
    cache.put("born-two", CachedArrays({"radii": _arr(16, 2.0)}))
    assert len(list(tmp_path.glob("*.ckpt"))) <= 1


def test_disk_save_failure_never_fails_the_put(tmp_path, monkeypatch):
    cache = ArtifactCache(max_bytes=1 << 20, disk_dir=tmp_path)

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(cache._disk, "save", boom)
    cache.put("born-x", CachedArrays({"radii": _arr(16, 1.0)}))
    assert cache.stats().disk_errors == 1
    assert isinstance(cache.get("born-x"), CachedArrays)  # memory tier


def test_trim_survives_files_vanishing(tmp_path, monkeypatch):
    import pathlib
    cache = ArtifactCache(max_bytes=1 << 20, disk_dir=tmp_path,
                          disk_max_bytes=1)
    cache.put("born-one", CachedArrays({"radii": _arr(16, 1.0)}))
    real_stat = pathlib.Path.stat

    def racing_stat(self, **kwargs):
        if self.suffix == ".ckpt":
            raise FileNotFoundError(self)  # a peer trim unlinked it
        return real_stat(self, **kwargs)

    monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
    cache._trim_disk()  # must not raise


def test_memory_eviction_keeps_disk_copy(tmp_path):
    cache = ArtifactCache(max_bytes=200, disk_dir=tmp_path)
    a = CachedArrays({"radii": _arr(20, 1.0)})  # 160 B
    b = CachedArrays({"radii": _arr(20, 2.0)})
    cache.put("born-a", a)
    cache.put("born-b", b)  # evicts born-a from memory
    hit = cache.get("born-a")  # …but disk still has it
    assert isinstance(hit, CachedArrays)
    assert np.array_equal(hit.arrays["radii"], a.arrays["radii"])
    assert cache.stats().disk_hits == 1


def test_named_cache_suffixes_metrics():
    import repro.obs as obs
    obs.enable(reset=True)
    try:
        cache = ArtifactCache(max_bytes=10_000, name="shard7")
        cache.put("born-abc", _arr(4, 1.0))
        cache.get("born-abc")
        cache.get("born-absent")
        names = set(obs.registry.names())
        assert "serve.cache.hits.shard7" in names
        assert "serve.cache.misses.shard7" in names
    finally:
        obs.disable()
