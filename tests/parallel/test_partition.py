"""Work-division tests (paper §IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree.build import build_octree
from repro.parallel.partition import (
    atom_segments,
    leaf_segments,
    segment_bounds,
    weighted_leaf_segments,
)


class TestSegmentBounds:
    def test_even_split(self):
        assert np.array_equal(segment_bounds(12, 4), [0, 3, 6, 9, 12])

    def test_remainder_goes_first(self):
        assert np.array_equal(segment_bounds(10, 4), [0, 3, 6, 8, 10])

    def test_more_parts_than_items(self):
        b = segment_bounds(2, 5)
        assert b[0] == 0 and b[-1] == 2
        assert np.all(np.diff(b) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            segment_bounds(5, 0)
        with pytest.raises(ValueError):
            segment_bounds(-1, 2)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_partition_property(self, n, parts):
        b = segment_bounds(n, parts)
        assert len(b) == parts + 1
        assert b[0] == 0 and b[-1] == n
        sizes = np.diff(b)
        assert np.all(sizes >= 0)
        assert sizes.max() - sizes.min() <= 1  # even to within one item


class TestLeafAndAtomSegments:
    def test_leaf_segments_tile(self):
        tree = build_octree(
            np.random.default_rng(0).normal(size=(300, 3)), leaf_size=8)
        segs = leaf_segments(tree, 5)
        joined = np.concatenate(segs)
        assert np.array_equal(joined, np.arange(len(tree.leaves)))

    def test_atom_segments_tile(self):
        segs = atom_segments(100, 3)
        assert segs[0][0] == 0 and segs[-1][1] == 100
        for (a, b), (c, d) in zip(segs[:-1], segs[1:]):
            assert b == c


class TestWeightedSegments:
    def test_balances_skewed_weights(self):
        tree = build_octree(
            np.random.default_rng(1).normal(size=(500, 3)), leaf_size=4)
        n = len(tree.leaves)
        w = np.ones(n)
        w[: n // 10] = 50.0  # heavy head
        segs = weighted_leaf_segments(tree, 4, w)
        joined = np.concatenate(segs)
        assert np.array_equal(np.sort(joined), np.arange(n))
        loads = [w[s].sum() for s in segs if len(s)]
        assert max(loads) < 2.0 * (w.sum() / 4)

    def test_more_parts_than_leaves(self):
        tree = build_octree(np.random.default_rng(2).normal(size=(9, 3)),
                            leaf_size=1)
        n = len(tree.leaves)
        segs = weighted_leaf_segments(tree, n + 3, np.ones(n))
        assert sum(len(s) for s in segs) == n

    def test_weight_length_validation(self):
        tree = build_octree(np.random.default_rng(3).normal(size=(50, 3)))
        with pytest.raises(ValueError):
            weighted_leaf_segments(tree, 2, np.ones(3))
