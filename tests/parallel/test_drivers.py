"""Named-driver tests (OCT_CILK / OCT_MPI / OCT_MPI+CILK)."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.parallel.drivers import (
    DriverResult,
    clear_profile_cache,
    run_oct_cilk,
    run_oct_hybrid,
    run_oct_mpi,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_profile_cache()
    yield
    clear_profile_cache()


class TestDrivers:
    def test_all_three_run(self, protein_small):
        params = ApproxParams()
        cilk = run_oct_cilk(protein_small, params)
        mpi = run_oct_mpi(protein_small, params)
        hyb = run_oct_hybrid(protein_small, params)
        for r in (cilk, mpi, hyb):
            assert isinstance(r, DriverResult)
            assert r.wall_seconds > 0
            assert r.energy < 0
            assert len(r.born_radii) == protein_small.natoms
        assert cilk.name == "OCT_CILK"
        assert mpi.name == "OCT_MPI"
        assert hyb.name == "OCT_MPI+CILK"

    def test_single_tree_drivers_agree_on_numerics(self, protein_small):
        """OCT_MPI and OCT_MPI+CILK run the same algorithm — identical
        energies, different schedules."""
        params = ApproxParams()
        mpi = run_oct_mpi(protein_small, params)
        hyb = run_oct_hybrid(protein_small, params)
        assert mpi.energy == hyb.energy
        assert np.array_equal(mpi.born_radii, hyb.born_radii)

    def test_cilk_uses_dualtree(self, protein_small):
        params = ApproxParams()
        cilk = run_oct_cilk(protein_small, params)
        mpi = run_oct_mpi(protein_small, params)
        assert cilk.profile.method == "dualtree"
        assert mpi.profile.method == "octree"
        # Same ε envelope, but not the identical approximation.
        assert cilk.energy == pytest.approx(mpi.energy, rel=0.02)

    def test_profile_cache_reused(self, protein_small):
        params = ApproxParams()
        a = run_oct_mpi(protein_small, params)
        b = run_oct_mpi(protein_small, params, processes=4)
        assert a.profile is b.profile   # one traversal, two layouts

    def test_memory_property(self, protein_small):
        params = ApproxParams()
        mpi = run_oct_mpi(protein_small, params)
        # Work division replicates all data per process.
        assert mpi.memory_per_process > protein_small.nbytes()
