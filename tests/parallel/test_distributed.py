"""Fig. 4 program: simulated-MPI execution vs serial, and the replay."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core import PolarizationSolver
from repro.parallel import WorkProfile, run_fig4_simmpi, simulate_fig4


@pytest.fixture(scope="module")
def serial(protein_small):
    s = PolarizationSolver(protein_small, ApproxParams())
    return s.energy(), s.born_radii()


class TestSimMPIExecution:
    @pytest.mark.parametrize("P", [1, 2, 4, 7])
    def test_matches_serial_any_p(self, protein_small, serial, P):
        ref_e, ref_r = serial
        out = run_fig4_simmpi(protein_small, ApproxParams(), processes=P)
        assert out.energy == pytest.approx(ref_e, rel=1e-10)
        assert np.allclose(out.born_radii, ref_r, rtol=1e-10)

    def test_hybrid_threads_same_numerics(self, protein_small, serial):
        ref_e, _ = serial
        out = run_fig4_simmpi(protein_small, ApproxParams(), processes=2,
                              threads=6)
        assert out.energy == pytest.approx(ref_e, rel=1e-10)

    def test_stats_populated(self, protein_small):
        out = run_fig4_simmpi(protein_small, ApproxParams(), processes=3)
        assert out.stats.wall_seconds > 0
        assert all(r.comp_seconds > 0 for r in out.stats.ranks)
        assert all(r.memory_bytes > 0 for r in out.stats.ranks)

    def test_work_division_validation(self, protein_small):
        with pytest.raises(ValueError):
            run_fig4_simmpi(protein_small, work_division="weird")


class TestAtomVsNodeDivision:
    def test_node_division_error_constant_in_p(self, protein_medium):
        params = ApproxParams(approx_math=False)
        energies = [run_fig4_simmpi(protein_medium, params, processes=P,
                                    work_division="node").energy
                    for P in (2, 4, 6)]
        assert np.ptp(energies) <= 1e-9 * abs(energies[0])

    def test_atom_division_error_varies_with_p(self, protein_medium):
        params = ApproxParams(approx_math=False)
        energies = [run_fig4_simmpi(protein_medium, params, processes=P,
                                    work_division="atom").energy
                    for P in (2, 4, 6)]
        # Different boundaries clip far deposits differently → energies
        # move (paper §IV-A); but they stay within the ε envelope.
        assert np.ptp(energies) > 0.0
        assert np.ptp(energies) < 0.02 * abs(energies[0])


class TestSimulateFig4:
    @pytest.fixture(scope="class")
    def profile(self, protein_medium):
        return WorkProfile.from_molecule(protein_medium, ApproxParams())

    def test_wall_decreases_with_cores(self, profile):
        t1 = simulate_fig4(profile, 1, 1).wall_seconds
        t12 = simulate_fig4(profile, 12, 1).wall_seconds
        assert t12 < t1 / 3

    def test_phases_sum_to_wallish(self, profile):
        st = simulate_fig4(profile, 4, 1)
        assert st.wall_seconds <= sum(st.phases.values()) + 1e-12

    def test_deterministic_by_seed(self, profile):
        a = simulate_fig4(profile, 4, 3, seed=5).wall_seconds
        b = simulate_fig4(profile, 4, 3, seed=5).wall_seconds
        assert a == b

    def test_seed_varies_hybrid_more_than_mpi(self, profile):
        mpi = [simulate_fig4(profile, 12, 1, seed=s).wall_seconds
               for s in range(10)]
        hyb = [simulate_fig4(profile, 2, 6, seed=s).wall_seconds
               for s in range(10)]
        assert np.std(hyb) / np.mean(hyb) >= 0.3 * np.std(mpi) / np.mean(mpi)

    def test_memory_replicated_per_rank(self, profile):
        st = simulate_fig4(profile, 12, 1)
        # Full replication: per-node memory = 12 × per-process.
        assert st.memory_per_node(12) == 12 * st.memory_per_process()

    def test_placement_validated(self, profile):
        with pytest.raises(ValueError):
            simulate_fig4(profile, 1000, 1)


class TestWorkProfile:
    def test_profile_records_serial_truth(self, protein_small):
        prof = WorkProfile.from_molecule(protein_small, ApproxParams())
        s = PolarizationSolver(protein_small, ApproxParams())
        assert prof.energy == pytest.approx(s.energy(), rel=1e-12)
        assert np.allclose(prof.born_radii, s.born_radii())
        assert prof.natoms == protein_small.natoms
        assert prof.born_leaf_count > 0
        assert prof.epol_leaf_count > 0
        assert prof.data_bytes > 0

    def test_dualtree_profile(self, protein_small):
        prof = WorkProfile.from_molecule(protein_small, ApproxParams(),
                                         method="dualtree")
        assert prof.method == "dualtree"
        assert np.isfinite(prof.energy)

    def test_bad_method(self, protein_small):
        with pytest.raises(ValueError):
            WorkProfile.from_molecule(protein_small, ApproxParams(),
                                      method="quadtree")
