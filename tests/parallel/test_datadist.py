"""Data-distributed solver tests (paper's future-work extension)."""

import numpy as np
import pytest

from repro.config import ApproxParams
from repro.core import PolarizationSolver
from repro.core.born_naive import born_radii_naive_r6
from repro.core.energy_naive import epol_naive
from repro.parallel import run_fig4_simmpi
from repro.parallel.datadist import run_data_distributed


@pytest.fixture(scope="module")
def reference(protein_medium):
    R = born_radii_naive_r6(protein_medium)
    return R, epol_naive(protein_medium, R)


class TestAccuracy:
    @pytest.mark.parametrize("P", [2, 4])
    def test_energy_within_epsilon_envelope(self, protein_medium,
                                            reference, P):
        _, e_naive = reference
        out = run_data_distributed(protein_medium, ApproxParams(),
                                   processes=P)
        assert abs(out.energy - e_naive) / abs(e_naive) < 0.02

    def test_tight_eps_matches_naive_closely(self, protein_small):
        R = born_radii_naive_r6(protein_small)
        e_naive = epol_naive(protein_small, R)
        out = run_data_distributed(protein_small,
                                   ApproxParams(eps_born=0.05,
                                                eps_epol=0.05),
                                   processes=3)
        assert abs(out.energy - e_naive) / abs(e_naive) < 1e-3
        assert np.mean(np.abs(out.born_radii - R) / R) < 1e-3

    def test_single_process_equals_serial_octree(self, protein_small):
        """P = 1 degenerates to the ordinary serial solver."""
        serial = PolarizationSolver(protein_small, ApproxParams())
        out = run_data_distributed(protein_small, ApproxParams(),
                                   processes=1)
        assert out.energy == pytest.approx(serial.energy(), rel=1e-10)
        assert np.allclose(out.born_radii, serial.born_radii())

    def test_radii_complete_and_positive(self, protein_medium):
        out = run_data_distributed(protein_medium, ApproxParams(),
                                   processes=4)
        assert len(out.born_radii) == protein_medium.natoms
        assert np.all(out.born_radii >= protein_medium.radii - 1e-12)


class TestMemoryScaling:
    def test_per_rank_memory_shrinks_with_p(self, protein_medium):
        """The whole point: memory/rank ∝ M/P + summaries + ghosts,
        whereas work-division replicates everything."""
        m2 = run_data_distributed(protein_medium, ApproxParams(),
                                  processes=2)
        m6 = run_data_distributed(protein_medium, ApproxParams(),
                                  processes=6)
        assert max(m6.rank_bytes) < max(m2.rank_bytes)

    def test_beats_work_division_memory(self, protein_medium):
        dd = run_data_distributed(protein_medium, ApproxParams(),
                                  processes=6)
        wd = run_fig4_simmpi(protein_medium, ApproxParams(), processes=6)
        assert max(dd.rank_bytes) < wd.stats.memory_per_process()


class TestGhostTraffic:
    def test_ghosts_bounded(self, protein_medium):
        """Ghost traffic must stay a fraction of the full data — else
        the scheme degenerates to replication."""
        out = run_data_distributed(protein_medium, ApproxParams(),
                                   processes=4)
        # Across 4 ranks, fetched ghosts stay below 4 full copies.
        assert out.ghost_qpoints < 3 * protein_medium.nqpoints
        assert out.ghost_atoms < 3 * protein_medium.natoms
        assert out.ghost_qpoints > 0   # near-boundary work exists

    def test_stats_accounted(self, protein_small):
        out = run_data_distributed(protein_small, ApproxParams(),
                                   processes=3)
        assert out.stats.wall_seconds > 0
        assert all(b > 0 for b in out.rank_bytes)


class TestPresort:
    def test_sample_sort_presort_same_envelope(self, protein_small):
        """Sample-sort slabs are splitter-balanced (approximately even),
        so block boundaries — and hence the ε-level approximation
        pattern — may differ from the central even split; the energies
        must still agree within the envelope and the radii atom-wise."""
        central = run_data_distributed(protein_small, ApproxParams(),
                                       processes=3, presort="central")
        sampled = run_data_distributed(protein_small, ApproxParams(),
                                       processes=3, presort="sample")
        assert sampled.energy == pytest.approx(central.energy, rel=5e-3)
        assert np.allclose(sampled.born_radii, central.born_radii,
                           rtol=0.05)

    def test_sample_presort_covers_all_atoms(self, protein_small):
        """Every atom lands in exactly one slab."""
        from repro.cluster.costmodel import CostModel
        from repro.cluster.machine import lonestar4
        from repro.parallel.datadist import _make_blocks
        mach = lonestar4()
        blocks = _make_blocks(protein_small,
                              protein_small.require_surface(), 3,
                              "sample", mach, CostModel(machine=mach))
        ids = np.concatenate([b["atom_ids"] for b in blocks])
        assert np.array_equal(np.sort(ids),
                              np.arange(protein_small.natoms))

    def test_presort_validation(self, protein_small):
        with pytest.raises(ValueError):
            run_data_distributed(protein_small, processes=2,
                                 presort="bogo")
