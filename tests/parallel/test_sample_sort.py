"""Distributed sample-sort tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.sample_sort import sample_sort


class TestCorrectness:
    def test_sorts_random_uint64(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2 ** 60, size=5000).astype(np.uint64)
        out = sample_sort(keys, processes=5)
        merged = out.gathered()
        assert np.array_equal(merged, np.sort(keys))

    def test_slabs_are_contiguous_ranges(self):
        rng = np.random.default_rng(1)
        keys = rng.normal(size=3000)
        out = sample_sort(keys, processes=4)
        # Every slab internally sorted; slab boundaries non-decreasing.
        prev_max = -np.inf
        for slab in out.slabs:
            if len(slab):
                assert np.all(np.diff(slab) >= 0)
                assert slab[0] >= prev_max
                prev_max = slab[-1]

    def test_payload_travels_with_keys(self):
        rng = np.random.default_rng(2)
        keys = rng.permutation(2000).astype(np.uint64)
        payload = keys.astype(np.float64) * 3.5   # payload determined by key
        out = sample_sort(keys, processes=3, payload=payload)
        merged_keys = out.gathered()
        merged_payload = np.concatenate(out.payload_slabs)
        assert np.array_equal(merged_keys, np.sort(keys))
        assert np.allclose(merged_payload, merged_keys.astype(float) * 3.5)

    def test_duplicate_keys(self):
        keys = np.array([5, 5, 5, 1, 1, 9, 9, 9, 9, 0] * 30,
                        dtype=np.uint64)
        out = sample_sort(keys, processes=4)
        assert np.array_equal(out.gathered(), np.sort(keys))

    def test_single_process_degenerates(self):
        keys = np.array([3.0, 1.0, 2.0])
        out = sample_sort(keys, processes=1)
        assert np.array_equal(out.gathered(), [1.0, 2.0, 3.0])

    @given(st.integers(2, 8), st.integers(0, 200), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_random_sizes(self, P, n, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 50, size=n).astype(np.uint64)
        out = sample_sort(keys, processes=P)
        assert np.array_equal(out.gathered(), np.sort(keys))


class TestValidation:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            sample_sort(np.zeros((3, 3)), processes=2)
        with pytest.raises(ValueError):
            sample_sort(np.zeros(4), processes=2, payload=np.zeros(3))


class TestStats:
    def test_time_accounted(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2 ** 40, size=8000).astype(np.uint64)
        out = sample_sort(keys, processes=4)
        assert out.stats.wall_seconds > 0
        assert all(r.comp_seconds > 0 for r in out.stats.ranks)
