"""End-to-end: the shipped tree lints clean through both entry points."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(*argv):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=120)


def test_repo_src_lints_clean():
    proc = run_lint("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_json_output_shape():
    proc = run_lint("src", "--format", "json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload == {"findings": [], "count": 0}


def test_findings_set_exit_code(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    proc = run_lint(str(bad))
    assert proc.returncode == 1
    assert "RPR002" in proc.stdout


def test_missing_path_is_usage_error(tmp_path):
    proc = run_lint(str(tmp_path / "missing.py"))
    assert proc.returncode == 2


def test_repro_cli_lint_subcommand():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=120)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_list_rules_names_every_rule():
    proc = run_lint("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                    "RPR101", "RPR201", "RPR202", "RPR203", "RPR204",
                    "RPR205"):
        assert rule_id in proc.stdout


def test_sarif_output_is_valid_sarif(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    proc = run_lint(str(bad), "--format", "sarif")
    assert proc.returncode == 1  # exit codes unchanged by the format
    doc = json.loads(proc.stdout)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "RPR201" in rule_ids and "RPR002" in rule_ids
    # Rule help links resolve into the real rule doc, per-rule anchor.
    assert run["tool"]["driver"]["informationUri"] == \
        "docs/STATIC_ANALYSIS.md"
    for rule in run["tool"]["driver"]["rules"]:
        expected = f"docs/STATIC_ANALYSIS.md#{rule['id'].lower()}"
        assert rule["helpUri"] == expected
    doc_text = Path("docs/STATIC_ANALYSIS.md").read_text(encoding="utf-8")
    for rule_id in rule_ids:
        assert f'<a id="{rule_id.lower()}"></a>' in doc_text
    (result,) = [r for r in run["results"] if r["ruleId"] == "RPR002"]
    loc = result["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] == 1
    assert result["ruleIndex"] == rule_ids.index("RPR002")


def test_sarif_clean_run_has_no_results():
    proc = run_lint("src", "--format", "sarif")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["runs"][0]["results"] == []
