"""RPR101 — the simulated-MPI collective-ordering verifier.

The final test is the regression demanded by the issue: a
rank-divergent collective sequence is (a) flagged by the linter and
(b) really deadlocks :class:`repro.cluster.simmpi.SimCluster` (with the
barrier timeout shrunk so the failure is fast).
"""

import textwrap

import pytest

from repro.cluster.simmpi import SimCluster
from repro.faults import CollectiveAbortedError
from repro.lint import extract_events, lint_source


def rpr101(src):
    return [f for f in lint_source(src, select=["RPR101"])
            if f.rule_id == "RPR101"]


# -- event extraction ---------------------------------------------------


def test_extracts_fig4_sequence():
    src = textwrap.dedent("""\
        def rankfn(comm):
            packed = comm.allreduce(x)
            parts = comm.allgather(y)
            total = comm.reduce(z, root=0)
            return total
    """)
    assert extract_events(src) == (("allreduce",), ("allgather",),
                                   ("reduce",))


def test_loop_bodies_become_loop_events():
    src = textwrap.dedent("""\
        def rankfn(comm):
            for _ in range(3):
                comm.barrier()
            comm.reduce(x)
    """)
    assert extract_events(src) == (("loop", (("barrier",),)), ("reduce",))


# -- clean patterns stay clean ------------------------------------------


def test_uniform_sequence_clean():
    src = textwrap.dedent("""\
        def rankfn(comm):
            a = comm.allreduce(x)
            b = comm.allgather(a)
            return comm.reduce(b, root=0)
    """)
    assert rpr101(src) == []


def test_root_selection_without_divergence_clean():
    # the canonical bcast idiom: every rank calls it, payload differs
    src = textwrap.dedent("""\
        def rankfn(comm):
            if comm.rank == 0:
                out = comm.bcast(data)
            else:
                out = comm.bcast(None)
            return out
    """)
    assert rpr101(src) == []


def test_data_dependent_branch_clean():
    # non-rank conditionals are assumed data-uniform across ranks
    src = textwrap.dedent("""\
        def rankfn(comm):
            if mode == "node":
                s = comm.allreduce(a)
            else:
                s = comm.allreduce(b)
            return s
    """)
    assert rpr101(src) == []


def test_p2p_skip_self_loop_clean():
    # the datadist ghost-exchange idiom: `continue` at self inside a
    # loop, collectives only after the loop completes on every rank
    src = textwrap.dedent("""\
        def rankfn(comm):
            for s in range(comm.size):
                if s == comm.rank:
                    continue
                comm.send(payload, dest=s)
            return comm.allreduce(x)
    """)
    assert rpr101(src) == []


def test_trailing_rank_guarded_return_clean():
    src = textwrap.dedent("""\
        def rankfn(comm):
            total = comm.reduce(x, root=0)
            if comm.rank == 0:
                return total
            return None
    """)
    assert rpr101(src) == []


def test_non_rank_functions_ignored():
    src = textwrap.dedent("""\
        def helper(data, rank):
            if rank == 0:
                return data.allreduce(1)
            return None
    """)
    assert rpr101(src) == []


# -- divergent patterns are flagged -------------------------------------


def test_divergent_branches_flagged():
    src = textwrap.dedent("""\
        def rankfn(comm):
            if comm.rank == 0:
                comm.allreduce(x)
            else:
                comm.allgather(x)
    """)
    findings = rpr101(src)
    assert len(findings) == 1
    assert "different collective sequences" in findings[0].message


def test_missing_branch_flagged():
    src = textwrap.dedent("""\
        def rankfn(comm):
            if comm.rank == 0:
                comm.barrier()
            return 1
    """)
    assert len(rpr101(src)) == 1


def test_rank_alias_tracked():
    src = textwrap.dedent("""\
        def rankfn(comm):
            r = comm.rank
            if r == 0:
                comm.allreduce(x)
    """)
    assert len(rpr101(src)) == 1


def test_early_return_before_collective_flagged():
    src = textwrap.dedent("""\
        def rankfn(comm):
            if comm.rank > 0:
                return None
            return comm.allgather(x)
    """)
    findings = rpr101(src)
    assert len(findings) == 1
    assert "never joins" in findings[0].message


def test_rank_dependent_loop_with_collective_flagged():
    src = textwrap.dedent("""\
        def rankfn(comm):
            for _ in range(comm.rank):
                comm.barrier()
    """)
    findings = rpr101(src)
    assert len(findings) == 1
    assert "loop" in findings[0].message


def test_nested_rank_function_analyzed():
    src = textwrap.dedent("""\
        def run(profile):
            def rankfn(comm):
                if comm.rank == 0:
                    comm.reduce(x)
                return None
            return rankfn
    """)
    assert len(rpr101(src)) == 1


def test_suppression_applies():
    src = textwrap.dedent("""\
        def rankfn(comm):
            if comm.rank == 0:  # lint: ignore[RPR101]
                comm.barrier()
    """)
    assert rpr101(src) == []


# -- the regression test: flagged pattern really deadlocks simmpi -------


DIVERGENT = textwrap.dedent("""\
    def rankfn(comm):
        if comm.rank == 0:
            comm.barrier()
        return comm.rank
""")


def test_rpr101_catches_real_simmpi_deadlock():
    # (a) the linter flags the rank-divergent schedule …
    findings = rpr101(DIVERGENT)
    assert len(findings) == 1
    assert "deadlock" in findings[0].message

    # (b) … and the very same program really deadlocks the simulated
    # runtime: rank 0 waits at the collective barrier for a partner
    # that already exited.  Shrink the 120 s timeout so the test is
    # quick; the broken barrier surfaces as a typed
    # CollectiveAbortedError naming the op, with no dead ranks (it is
    # a schedule divergence, not a crash).
    namespace = {}
    exec(compile(DIVERGENT, "<divergent>", "exec"), namespace)
    rankfn = namespace["rankfn"]
    cluster = SimCluster(processes=2, timeout=0.5)
    with pytest.raises(CollectiveAbortedError) as exc_info:
        cluster.run(rankfn)
    assert exc_info.value.op == "barrier"
    assert exc_info.value.timed_out
    assert exc_info.value.dead == ()
