"""Per-rule positive + negative fixtures for RPR001–RPR006."""

import textwrap

from repro.lint import lint_source


def ids(findings):
    return [f.rule_id for f in findings]


# -- RPR001: unseeded / global-state RNG --------------------------------


def test_rpr001_legacy_global_rng_flagged():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert ids(lint_source(src, select=["RPR001"])) == ["RPR001"]


def test_rpr001_legacy_seed_call_flagged():
    # even np.random.seed() is global state — explicit generators only
    src = "import numpy as np\nnp.random.seed(0)\n"
    assert ids(lint_source(src, select=["RPR001"])) == ["RPR001"]


def test_rpr001_unseeded_default_rng_flagged():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert ids(lint_source(src, select=["RPR001"])) == ["RPR001"]


def test_rpr001_seed_none_flagged():
    src = "import numpy as np\nrng = np.random.default_rng(seed=None)\n"
    assert ids(lint_source(src, select=["RPR001"])) == ["RPR001"]


def test_rpr001_unseeded_randomstate_flagged():
    src = "import numpy as np\nrng = np.random.RandomState()\n"
    assert ids(lint_source(src, select=["RPR001"])) == ["RPR001"]


def test_rpr001_seeded_variants_clean():
    src = textwrap.dedent("""\
        import numpy as np

        def f(seed: int = 0):
            a = np.random.default_rng(0)
            b = np.random.default_rng(seed)
            c = np.random.default_rng(seed=seed)
            return a, b, c
    """)
    assert lint_source(src, select=["RPR001"]) == []


def test_rpr001_test_modules_exempt():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert lint_source(src, select=["RPR001"],
                       filename="tests/test_whatever.py") == []


# -- RPR002: mutable default arguments ----------------------------------


def test_rpr002_literal_defaults_flagged():
    src = "def f(a=[], b={}, c=set()):\n    return a, b, c\n"
    assert ids(lint_source(src, select=["RPR002"])) == ["RPR002"] * 3


def test_rpr002_kwonly_and_lambda_flagged():
    src = "def f(*, a=list()):\n    return a\ng = lambda x={}: x\n"
    assert ids(lint_source(src, select=["RPR002"])) == ["RPR002"] * 2


def test_rpr002_none_and_immutable_clean():
    src = "def f(a=None, b=(), c=0, d='x'):\n    return a, b, c, d\n"
    assert lint_source(src, select=["RPR002"]) == []


# -- RPR003: bare / overbroad except ------------------------------------


def test_rpr003_bare_except_flagged():
    src = "try:\n    pass\nexcept:\n    pass\n"
    assert ids(lint_source(src, select=["RPR003"])) == ["RPR003"]


def test_rpr003_except_exception_flagged():
    src = "try:\n    pass\nexcept Exception:\n    pass\n"
    assert ids(lint_source(src, select=["RPR003"])) == ["RPR003"]


def test_rpr003_exception_in_tuple_flagged():
    src = "try:\n    pass\nexcept (ValueError, BaseException):\n    pass\n"
    assert ids(lint_source(src, select=["RPR003"])) == ["RPR003"]


def test_rpr003_specific_exception_clean():
    src = ("try:\n    pass\nexcept (ValueError, KeyError) as exc:\n"
           "    raise RuntimeError('no') from exc\n")
    assert lint_source(src, select=["RPR003"]) == []


def test_rpr003_suppressible_for_deliberate_boundaries():
    src = ("try:\n    pass\n"
           "except BaseException:  # lint: ignore[RPR003]\n    raise\n")
    assert lint_source(src, select=["RPR003"]) == []


# -- RPR004: dtype discipline on hot paths ------------------------------

HOT = "src/repro/core/kernel.py"
COLD = "src/repro/analysis/tables.py"


def test_rpr004_missing_dtype_flagged_in_hot_packages():
    src = "import numpy as np\na = np.zeros(10)\nb = np.empty((3, 3))\n"
    assert ids(lint_source(src, select=["RPR004"], filename=HOT)) \
        == ["RPR004"] * 2


def test_rpr004_full_without_dtype_flagged():
    src = "import numpy as np\na = np.full(4, 1.5)\n"
    assert ids(lint_source(src, select=["RPR004"], filename=HOT)) \
        == ["RPR004"]


def test_rpr004_explicit_dtype_clean():
    src = textwrap.dedent("""\
        import numpy as np
        a = np.zeros(10, dtype=np.float64)
        b = np.empty((3, 3), dtype=np.int64)
        c = np.full(4, 1.5, dtype=np.float64)
        d = np.zeros_like(a)
    """)
    assert lint_source(src, select=["RPR004"], filename=HOT) == []


def test_rpr004_cold_packages_exempt():
    src = "import numpy as np\na = np.zeros(10)\n"
    assert lint_source(src, select=["RPR004"], filename=COLD) == []


def test_rpr004_octree_and_parallel_in_scope():
    src = "import numpy as np\na = np.ones(2)\n"
    for path in ("src/repro/octree/x.py", "src/repro/parallel/y.py"):
        assert ids(lint_source(src, select=["RPR004"], filename=path)) \
            == ["RPR004"]


# -- RPR005: __all__ consistency ----------------------------------------

INIT = "src/repro/fake/__init__.py"


def test_rpr005_missing_all_flagged():
    src = "from repro.config import ParallelConfig\n"
    assert ids(lint_source(src, select=["RPR005"], filename=INIT)) \
        == ["RPR005"]


def test_rpr005_unbound_name_flagged():
    src = ("from repro.config import ParallelConfig\n"
           "__all__ = ['ParallelConfig', 'Ghost']\n")
    findings = lint_source(src, select=["RPR005"], filename=INIT)
    assert ids(findings) == ["RPR005"]
    assert "Ghost" in findings[0].message


def test_rpr005_duplicate_entry_flagged():
    src = ("from repro.config import ParallelConfig\n"
           "__all__ = ['ParallelConfig', 'ParallelConfig']\n")
    findings = lint_source(src, select=["RPR005"], filename=INIT)
    assert ids(findings) == ["RPR005"]
    assert "duplicate" in findings[0].message


def test_rpr005_consistent_init_clean():
    src = textwrap.dedent("""\
        from repro.config import ParallelConfig as PC

        def helper():
            return PC

        __all__ = ['PC', 'helper']
    """)
    assert lint_source(src, select=["RPR005"], filename=INIT) == []


def test_rpr005_non_init_module_exempt():
    src = "from repro.config import ParallelConfig\n"
    assert lint_source(src, select=["RPR005"],
                       filename="src/repro/fake/module.py") == []


# -- RPR006: fault-boundary — no raw infra exceptions from cluster/faults


CLUSTER_FILE = "src/repro/cluster/foo.py"


def test_rpr006_raise_queue_empty_flagged():
    src = textwrap.dedent("""\
        import queue
        def f():
            raise queue.Empty
    """)
    assert ids(lint_source(src, filename=CLUSTER_FILE,
                           select=["RPR006"])) == ["RPR006"]


def test_rpr006_raise_broken_barrier_call_flagged():
    src = textwrap.dedent("""\
        import threading
        def f():
            raise threading.BrokenBarrierError()
    """)
    assert ids(lint_source(src, filename="src/repro/faults/bar.py",
                           select=["RPR006"])) == ["RPR006"]


def test_rpr006_bare_reraise_of_infra_exception_flagged():
    src = textwrap.dedent("""\
        import queue
        def f(q):
            try:
                return q.get_nowait()
            except queue.Empty:
                raise
    """)
    assert ids(lint_source(src, filename=CLUSTER_FILE,
                           select=["RPR006"])) == ["RPR006"]


def test_rpr006_conversion_at_catch_site_passes():
    src = textwrap.dedent("""\
        import queue
        from repro.faults.errors import RecvTimeoutError
        def f(q):
            try:
                return q.get_nowait()
            except queue.Empty:
                raise RecvTimeoutError(0, 1, 0, dest_clock=0.0) from None
    """)
    assert ids(lint_source(src, filename=CLUSTER_FILE,
                           select=["RPR006"])) == []


def test_rpr006_scope_limited_to_cluster_and_faults():
    src = "import queue\nraise queue.Empty\n"
    assert ids(lint_source(src, filename="src/repro/core/foo.py",
                           select=["RPR006"])) == []


def test_rpr006_ignore_comment_suppresses():
    src = ("import queue\n"
           "raise queue.Empty  # lint: ignore[RPR006]\n")
    assert ids(lint_source(src, filename=CLUSTER_FILE,
                           select=["RPR006"])) == []


# -- RPR007: typed diagnostics in core/molecules ------------------------

CORE_FILE = "src/repro/core/foo.py"
MOL_FILE = "src/repro/molecules/foo.py"


def test_rpr007_bare_valueerror_flagged():
    src = "def f():\n    raise ValueError('bad radii')\n"
    assert ids(lint_source(src, filename=CORE_FILE,
                           select=["RPR007"])) == ["RPR007"]


def test_rpr007_bare_runtimeerror_flagged():
    src = "def f():\n    raise RuntimeError('boom')\n"
    assert ids(lint_source(src, filename=MOL_FILE,
                           select=["RPR007"])) == ["RPR007"]


def test_rpr007_typed_guard_errors_clean():
    src = textwrap.dedent("""\
        from repro.guard.errors import NumericalGuardError

        def f():
            raise NumericalGuardError('bad', phase='born', indices=[1])
    """)
    assert ids(lint_source(src, filename=CORE_FILE,
                           select=["RPR007"])) == []


def test_rpr007_other_builtins_clean():
    src = "def f():\n    raise TypeError('not our business')\n"
    assert ids(lint_source(src, filename=CORE_FILE,
                           select=["RPR007"])) == []


def test_rpr007_bare_reraise_clean():
    src = textwrap.dedent("""\
        def f():
            try:
                g()
            except ValueError:
                raise
    """)
    assert ids(lint_source(src, filename=CORE_FILE,
                           select=["RPR007"])) == []


def test_rpr007_scope_limited_to_core_and_molecules():
    src = "def f():\n    raise ValueError('fine elsewhere')\n"
    for fn in ("src/repro/cluster/foo.py", "src/repro/octree/foo.py",
               "src/repro/cli.py"):
        assert ids(lint_source(src, filename=fn,
                               select=["RPR007"])) == []


def test_rpr007_test_modules_exempt():
    src = "def f():\n    raise ValueError('x')\n"
    assert ids(lint_source(src, filename="tests/core/test_foo.py",
                           select=["RPR007"])) == []


def test_rpr007_ignore_comment_suppresses():
    src = ("def f(method):\n"
           "    raise ValueError(  # lint: ignore[RPR007] — arg check\n"
           "        f'unknown method {method!r}')\n")
    assert ids(lint_source(src, filename=CORE_FILE,
                           select=["RPR007"])) == []


# -- RPR008: serve-queue discipline -------------------------------------

SERVE_FILE = "src/repro/serve/service.py"


def test_rpr008_unbounded_queue_flagged():
    src = "import queue\nq = queue.Queue()\n"
    assert ids(lint_source(src, select=["RPR008"],
                           filename=SERVE_FILE)) == ["RPR008"]


def test_rpr008_zero_maxsize_flagged():
    src = ("import queue\n"
           "a = queue.Queue(maxsize=0)\n"
           "b = queue.PriorityQueue(0)\n"
           "c = queue.LifoQueue()\n")
    assert ids(lint_source(src, select=["RPR008"],
                           filename=SERVE_FILE)) == ["RPR008"] * 3


def test_rpr008_simplequeue_always_flagged():
    src = "import queue\nq = queue.SimpleQueue()\n"
    assert ids(lint_source(src, select=["RPR008"],
                           filename=SERVE_FILE)) == ["RPR008"]


def test_rpr008_bounded_queue_clean():
    src = ("import queue\n"
           "a = queue.Queue(maxsize=64)\n"
           "b = queue.PriorityQueue(16)\n"
           "c = queue.Queue(maxsize=capacity)\n")
    assert lint_source(src, select=["RPR008"], filename=SERVE_FILE) == []


def test_rpr008_unbounded_deque_flagged():
    src = ("from collections import deque\n"
           "a = deque()\n"
           "b = deque([1, 2], maxlen=None)\n")
    assert ids(lint_source(src, select=["RPR008"],
                           filename=SERVE_FILE)) == ["RPR008"] * 2


def test_rpr008_bounded_deque_clean():
    src = ("import collections\n"
           "a = collections.deque(maxlen=128)\n"
           "b = collections.deque([1], 8)\n")
    assert lint_source(src, select=["RPR008"], filename=SERVE_FILE) == []


def test_rpr008_sleep_polling_loop_flagged():
    src = textwrap.dedent("""\
        import time
        def wait_done(job):
            while not job.done:
                time.sleep(0.01)
        def retry(fn):
            for _ in range(3):
                time.sleep(1.0)
                fn()
    """)
    assert ids(lint_source(src, select=["RPR008"],
                           filename=SERVE_FILE)) == ["RPR008"] * 2


def test_rpr008_condition_wait_clean():
    src = textwrap.dedent("""\
        import threading
        def wait_done(cond, job):
            with cond:
                while not job.done:
                    cond.wait(timeout=0.5)
        def one_shot_sleep():
            import time
            time.sleep(0.1)
    """)
    assert lint_source(src, select=["RPR008"], filename=SERVE_FILE) == []


def test_rpr008_scope_limited_to_serve():
    src = "import queue\nq = queue.Queue()\nimport time\n" \
          "while True:\n    time.sleep(1)\n"
    for fn in ("src/repro/cluster/comm.py", "src/repro/cli.py",
               "tests/serve/test_service.py"):
        assert lint_source(src, select=["RPR008"], filename=fn) == []


def test_rpr008_suppressible():
    src = ("import collections\n"
           "log = collections.deque()  # lint: ignore[RPR008]\n")
    assert lint_source(src, select=["RPR008"], filename=SERVE_FILE) == []


# -- RPR009: monotonic clocks + bounded retries in serve/faults ---------

FAULTS_FILE = "src/repro/faults/plan.py"
FLEET_FILE = "src/repro/fleet/supervisor.py"


def test_rpr009_time_time_flagged_in_serve():
    src = "import time\ndeadline = time.time() + 5.0\n"
    assert ids(lint_source(src, select=["RPR009"],
                           filename=SERVE_FILE)) == ["RPR009"]


def test_rpr009_time_time_flagged_in_faults():
    src = "import time\nstart = time.time()\n"
    assert ids(lint_source(src, select=["RPR009"],
                           filename=FAULTS_FILE)) == ["RPR009"]


def test_rpr009_time_time_flagged_in_fleet():
    src = "import time\nbeat = time.time()\n"
    assert ids(lint_source(src, select=["RPR009"],
                           filename=FLEET_FILE)) == ["RPR009"]


def test_rpr009_while_true_swallowing_flagged_in_fleet():
    src = textwrap.dedent("""
        def forever():
            while True:
                try:
                    probe()
                except OSError:
                    continue
    """)
    assert ids(lint_source(src, select=["RPR009"],
                           filename=FLEET_FILE)) == ["RPR009"]


def test_rpr009_monotonic_clean():
    src = ("import time\n"
           "deadline = time.monotonic() + 5.0\n"
           "t0 = time.perf_counter()\n")
    assert lint_source(src, select=["RPR009"],
                       filename=SERVE_FILE) == []


def test_rpr009_while_true_swallowing_except_flagged():
    src = textwrap.dedent("""
        def forever():
            while True:
                try:
                    attempt()
                except Exception:
                    continue
    """)
    assert ids(lint_source(src, select=["RPR009"],
                           filename=SERVE_FILE)) == ["RPR009"]


def test_rpr009_while_true_pass_handler_flagged():
    src = textwrap.dedent("""
        def forever():
            while True:
                try:
                    attempt()
                except OSError:
                    pass
    """)
    assert ids(lint_source(src, select=["RPR009"],
                           filename=FAULTS_FILE)) == ["RPR009"]


def test_rpr009_handler_with_bookkeeping_clean():
    # Counting / re-raising / breaking is not a silent retry loop.
    src = textwrap.dedent("""
        def bounded():
            errors = 0
            while True:
                try:
                    return attempt()
                except OSError:
                    errors += 1
                    if errors >= 3:
                        raise
    """)
    assert lint_source(src, select=["RPR009"],
                       filename=SERVE_FILE) == []


def test_rpr009_bounded_while_loop_clean():
    src = textwrap.dedent("""
        def bounded(n):
            while n > 0:
                try:
                    attempt()
                except OSError:
                    continue
                n -= 1
    """)
    assert lint_source(src, select=["RPR009"],
                       filename=SERVE_FILE) == []


def test_rpr009_scope_limited_to_serve_and_faults():
    src = "import time\nt = time.time()\n"
    for fn in ("src/repro/core/solver.py", "src/repro/cli.py",
               "src/repro/obs/tracing.py"):
        assert lint_source(src, select=["RPR009"], filename=fn) == []


def test_rpr009_skips_tests():
    src = "import time\nt = time.time()\n"
    assert lint_source(src, select=["RPR009"],
                       filename="tests/serve/test_service.py") == []


def test_rpr009_suppressible():
    src = ("import time\n"
           "wall = time.time()  # lint: ignore[RPR009]\n")
    assert lint_source(src, select=["RPR009"],
                       filename=SERVE_FILE) == []


# -- RPR008/RPR009 scope extension: the edge package --------------------

EDGE_FILE = "src/repro/edge/app.py"


def test_rpr008_flags_unbounded_queue_in_edge():
    src = "import queue\nq = queue.Queue()\n"
    assert ids(lint_source(src, select=["RPR008"],
                           filename=EDGE_FILE)) == ["RPR008"]


def test_rpr009_flags_wall_clock_in_edge():
    src = "import time\nt0 = time.time()\n"
    assert ids(lint_source(src, select=["RPR009"],
                           filename=EDGE_FILE)) == ["RPR009"]


# -- RPR010: redaction discipline in the edge ---------------------------


def test_rpr010_flags_raw_body_and_token_sinks():
    src = textwrap.dedent("""\
        def handle(body, token, auth_header):
            print(body)
            log.info(token)
            logger.warning(f"denied {auth_header}")
            stream.write(body)
    """)
    found = ids(lint_source(src, select=["RPR010"], filename=EDGE_FILE))
    assert found == ["RPR010"] * 4


def test_rpr010_flags_sensitive_keyword_argument():
    src = "def f(raw):\n    log.record(body=raw)\n"
    assert ids(lint_source(src, select=["RPR010"],
                           filename=EDGE_FILE)) == ["RPR010"]


def test_rpr010_digests_and_sizes_are_clean():
    src = textwrap.dedent("""\
        def handle(body, resp, wfile):
            log.record(bytes_in=len(body),
                       body_sha256=body_digest(body))
            wfile.write(resp.body)
    """)
    assert lint_source(src, select=["RPR010"], filename=EDGE_FILE) == []


def test_rpr010_scoped_to_edge_and_exempts_redaction_module():
    src = "def f(token):\n    print(token)\n"
    for fn in ("src/repro/serve/service.py", "src/repro/cli.py",
               "src/repro/edge/redaction.py",
               "tests/edge/test_app.py"):
        assert lint_source(src, select=["RPR010"], filename=fn) == []


def test_rpr010_suppressible():
    src = ("def f(token):\n"
           "    print(token)  # lint: ignore[RPR010]\n")
    assert lint_source(src, select=["RPR010"], filename=EDGE_FILE) == []
