"""Framework mechanics: suppressions, findings, file collection."""

import textwrap

from repro.lint import Finding, Severity, lint_source
from repro.lint.engine import collect_files
from repro.lint.framework import parse_suppressions


def test_finding_render_and_json():
    f = Finding(path="a/b.py", line=3, col=7, rule_id="RPR001",
                severity=Severity.ERROR, message="boom")
    assert f.render() == "a/b.py:3:7: RPR001 error boom"
    j = f.to_json()
    assert j["rule"] == "RPR001" and j["severity"] == "error"
    assert j["line"] == 3 and j["col"] == 7


def test_findings_sort_by_location():
    a = Finding("a.py", 10, 1, "RPR002", Severity.ERROR, "x")
    b = Finding("a.py", 2, 1, "RPR001", Severity.ERROR, "y")
    assert sorted([a, b]) == [b, a]


def test_parse_suppressions_forms():
    src = textwrap.dedent("""\
        x = 1  # lint: ignore[RPR001]
        y = 2  # lint: ignore[RPR001, RPR003]
        z = 3  # lint: ignore
        w = 4  # unrelated comment
        s = "# lint: ignore[RPR004] inside a string does not count"
    """)
    sup = parse_suppressions(src)
    assert sup[1] == {"RPR001"}
    assert sup[2] == {"RPR001", "RPR003"}
    assert sup[3] == {"*"}
    assert 4 not in sup
    assert 5 not in sup  # tokenizer skips string literals


def test_suppression_silences_rule():
    flagged = lint_source("def f(x=[]):\n    return x\n")
    assert [f.rule_id for f in flagged] == ["RPR002"]
    quiet = lint_source(
        "def f(x=[]):  # lint: ignore[RPR002]\n    return x\n")
    assert quiet == []


def test_bare_suppression_silences_everything():
    quiet = lint_source(
        "def f(x=[]):  # lint: ignore\n    return x\n")
    assert quiet == []


def test_syntax_error_reported_as_finding():
    findings = lint_source("def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule_id == "RPR999"
    assert "syntax error" in findings[0].message


def test_collect_files_skips_caches(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    files = collect_files([str(tmp_path)])
    assert [f.name for f in files] == ["a.py"]
    assert all("__pycache__" not in str(f) for f in files)


def test_collect_files_missing_path_raises(tmp_path):
    import pytest
    with pytest.raises(FileNotFoundError):
        collect_files([str(tmp_path / "nope")])
