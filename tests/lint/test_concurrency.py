"""RPR201–RPR205: the lock-discipline rules (repro.lint.concurrency)."""

from __future__ import annotations

import textwrap

from repro.lint.engine import lint_source

RPR2XX = ["RPR201", "RPR202", "RPR203", "RPR204", "RPR205"]


def findings(source, select=RPR2XX, filename="fixture.py"):
    return lint_source(textwrap.dedent(source), filename, select=select)


def ids(source, **kw):
    return sorted({f.rule_id for f in findings(source, **kw)})


# -- RPR201: lock-order cycles ---------------------------------------------

def test_rpr201_flags_opposite_acquisition_orders():
    src = """
    import threading

    class S:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                with self._b:
                    pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
    """
    found = findings(src)
    assert {f.rule_id for f in found} == {"RPR201"}
    assert len(found) == 2  # one per conflicting edge
    assert "opposite order" in found[0].message


def test_rpr201_sees_through_helper_calls():
    src = """
    import threading

    class S:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def _grab_b(self):
            with self._b:
                pass

        def forward(self):
            with self._a:
                self._grab_b()

        def backward(self):
            with self._b:
                with self._a:
                    pass
    """
    assert ids(src) == ["RPR201"]


def test_rpr201_flags_nonreentrant_self_deadlock():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()

        def _locked_op(self):
            with self._lock:
                pass

        def outer(self):
            with self._lock:
                self._locked_op()
    """
    found = findings(src)
    assert all(f.rule_id == "RPR201" for f in found)
    assert any("self-deadlock" in f.message for f in found)


def test_rpr201_rlock_reentry_is_fine():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.RLock()

        def _locked_op(self):
            with self._lock:
                pass

        def outer(self):
            with self._lock:
                self._locked_op()
    """
    assert ids(src) == []


def test_rpr201_consistent_nesting_is_fine():
    src = """
    import threading

    class S:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def one(self):
            with self._a:
                with self._b:
                    pass

        def two(self):
            with self._a:
                with self._b:
                    pass
    """
    assert ids(src) == []


# -- RPR202: blocking while holding a hot lock -----------------------------

def test_rpr202_flags_file_io_under_hot_lock():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._stats = {}  # guarded-by: _lock

        def persist(self, path, payload):
            with self._lock:
                path.write_text(payload)
    """
    found = findings(src)
    assert ids(src) == ["RPR202"]
    assert "write_text" in found[0].message


def test_rpr202_cold_serialization_mutex_is_exempt():
    # A mutex guarding no fields exists purely to serialize the I/O it
    # wraps (the artifact cache's _disk_lock pattern) — not a finding.
    src = """
    import threading

    class S:
        def __init__(self):
            self._disk_lock = threading.Lock()

        def trim(self, path):
            with self._disk_lock:
                path.unlink()
    """
    assert ids(src) == []


def test_rpr202_queue_and_solver_ops_flagged():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0  # guarded-by: _lock
            self._queue = object()

        def a(self):
            with self._lock:
                self._queue.put(1)

        def b(self, solver):
            with self._lock:
                solver.report()
    """
    assert ids(src) == ["RPR202"]
    assert len(findings(src)) == 2


def test_rpr202_waiting_on_own_condition_lock_is_fine():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._cv = threading.Condition(self._lock)

        def drain(self):
            with self._cv:
                self._cv.wait_for(lambda: True, 1.0)
    """
    assert ids(src) == []


def test_rpr202_condition_wait_under_other_lock_flagged():
    src = """
    import threading

    class S:
        def __init__(self):
            self._a = threading.Lock()
            self._cv = threading.Condition()
            self._n = 0  # guarded-by: _a

        def bad(self):
            with self._a:
                with self._cv:
                    self._cv.wait_for(lambda: True, 1.0)
    """
    assert "RPR202" in ids(src)


# -- RPR203: wait without a predicate loop ---------------------------------

def test_rpr203_bare_wait_flagged_while_loop_ok():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._cv = threading.Condition(self._lock)
            self.ready = False

        def bad(self):
            with self._cv:
                if not self.ready:
                    self._cv.wait()

        def good(self):
            with self._cv:
                while not self.ready:
                    self._cv.wait()
    """
    found = findings(src, select=["RPR203"])
    assert len(found) == 1
    assert found[0].rule_id == "RPR203"


def test_rpr203_wait_for_is_exempt():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._cv = threading.Condition(self._lock)

        def fine(self):
            with self._cv:
                self._cv.wait_for(lambda: True, 0.1)
    """
    assert ids(src, select=["RPR203"]) == []


# -- RPR204: guarded fields written outside their lock ---------------------

def test_rpr204_flags_unguarded_writes_various_forms():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0          # guarded-by: _lock
            self._items = []     # guarded-by: _lock
            self._map = {}       # guarded-by: _lock

        def bad(self):
            self._n += 1
            self._items.append(1)
            self._map["k"] = 2

        def good(self):
            with self._lock:
                self._n += 1
                self._items.append(1)
                self._map["k"] = 2
    """
    found = findings(src, select=["RPR204"])
    assert len(found) == 3
    assert all(f.rule_id == "RPR204" for f in found)


def test_rpr204_init_and_private_helper_under_lock_exempt():
    # __init__ runs before the object is shared; a private helper only
    # ever called under the lock inherits it interprocedurally.
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._stats = {}  # guarded-by: _lock

        def _count(self, k):
            self._stats[k] = self._stats.get(k, 0) + 1

        def hit(self):
            with self._lock:
                self._count("hits")

        def miss(self):
            with self._lock:
                self._count("misses")
    """
    assert ids(src, select=["RPR204"]) == []


def test_rpr204_helper_also_called_unlocked_is_flagged():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._stats = {}  # guarded-by: _lock

        def _count(self, k):
            self._stats[k] = self._stats.get(k, 0) + 1

        def locked(self):
            with self._lock:
                self._count("a")

        def unlocked(self):
            self._count("b")
    """
    assert ids(src, select=["RPR204"]) == ["RPR204"]


def test_rpr204_unknown_lock_name_in_annotation():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0  # guarded-by: _mutex
    """
    found = findings(src, select=["RPR204"])
    assert len(found) == 1
    assert "_mutex" in found[0].message


def test_rpr204_suppression_comment_works():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0  # guarded-by: _lock

        def _reset(self):
            self._n = 0  # lint: ignore[RPR204] — pre-thread reset
    """
    assert ids(src, select=["RPR204"]) == []


# -- RPR205: notify without the lock ---------------------------------------

def test_rpr205_notify_without_lock_flagged():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._cv = threading.Condition(self._lock)

        def bad(self):
            self._cv.notify_all()

        def good(self):
            with self._lock:
                self._cv.notify_all()

        def also_good(self):
            with self._cv:
                self._cv.notify()
    """
    found = findings(src, select=["RPR205"])
    assert len(found) == 1
    assert found[0].rule_id == "RPR205"


# -- witness factories are modeled like threading primitives ---------------

def test_named_lock_factories_are_recognized():
    src = """
    from repro.obs.lockwitness import named_condition, named_lock

    class S:
        def __init__(self):
            self._lock = named_lock("s._lock")
            self._cv = named_condition("s._cv", self._lock)
            self._n = 0  # guarded-by: _lock

        def bad(self):
            self._n += 1
            self._cv.notify_all()
    """
    assert ids(src) == ["RPR204", "RPR205"]


# -- the PR 5 bug class, reintroduced as a fixture -------------------------

def test_stranded_coalesced_ticket_pattern_is_flagged():
    """Regression seed: the stranded-coalesced-ticket shape from PR 5.

    ``submit`` publishes the ticket then calls into the queue *while
    still holding the service lock*; the worker drains the queue under
    the queue lock and then takes the service lock to retire the
    ticket — an A→B / B→A cycle (RPR201).  The failure path retracts
    the published ticket without any lock at all (RPR204), exactly the
    unguarded-mutation half of the original bug.
    """
    src = """
    import threading

    class StrandedService:
        def __init__(self):
            self._lock = threading.Lock()
            self._qlock = threading.Lock()
            self._inflight = {}   # guarded-by: _lock
            self._pending = []    # guarded-by: _qlock

        def submit(self, key, job):
            with self._lock:
                if key in self._inflight:
                    return self._inflight[key]
                self._inflight[key] = job
                with self._qlock:
                    self._pending.append(job)
            return job

        def _retire(self, key):
            with self._lock:
                self._inflight.pop(key, None)

        def worker(self):
            with self._qlock:
                while self._pending:
                    job = self._pending.pop()
                    self._retire(job)

        def withdraw(self, key):
            # The PR 5 bug: retracting a published ticket with no lock,
            # so a concurrent coalescing submit strands its caller.
            self._inflight.pop(key, None)
    """
    found = findings(src)
    by_rule = {f.rule_id for f in found}
    assert "RPR201" in by_rule, found
    assert "RPR204" in by_rule, found


# -- general behavior ------------------------------------------------------

def test_rules_skip_test_files():
    src = """
    import threading

    class S:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0  # guarded-by: _lock

        def bad(self):
            self._n += 1
    """
    assert ids(src, filename="test_fixture.py") == []


def test_classes_without_locks_are_ignored():
    src = """
    class Plain:
        def __init__(self):
            self._n = 0  # guarded-by: _lock

        def touch(self):
            self._n += 1
    """
    assert ids(src) == []
