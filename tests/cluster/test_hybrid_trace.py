"""Intra-rank execution model and RunStats accounting."""

import numpy as np
import pytest

from repro.cluster.costmodel import CostModel
from repro.cluster.hybrid import run_intra_rank
from repro.cluster.trace import RankStats, RunStats


class TestRunIntraRank:
    @pytest.fixture(scope="class")
    def cost(self):
        return CostModel()

    def test_single_thread_plain_sum(self, cost):
        out = run_intra_rank([0.1, 0.2, 0.3], threads=1, cost=cost)
        assert out.seconds == pytest.approx(0.6)
        assert out.steals == 0

    def test_multithread_speedup(self, cost):
        costs = np.full(2000, 1e-4)
        serial = run_intra_rank(costs, 1, cost).seconds
        parallel = run_intra_rank(costs, 6, cost).seconds
        assert parallel < serial / 4  # ≥ 4× on 6 workers

    def test_interface_overhead_only_for_hybrid(self, cost):
        costs = np.full(100, 1e-5)
        shared = run_intra_rank(costs, 6, cost, mpi_interface=False)
        hybrid = run_intra_rank(costs, 6, cost, mpi_interface=True)
        assert hybrid.seconds == pytest.approx(
            shared.seconds + cost.hybrid_interface_overhead, rel=0.2)


class TestRunStats:
    def _stats(self):
        ranks = [RankStats(rank=0, comp_seconds=1.0, comm_seconds=0.2,
                           idle_seconds=0.1, memory_bytes=100),
                 RankStats(rank=1, comp_seconds=0.5, comm_seconds=0.2,
                           idle_seconds=0.6, memory_bytes=80)]
        return RunStats(processes=2, threads=6, ranks=ranks,
                        phases={"born": 1.0})

    def test_wall_is_slowest_rank(self):
        assert self._stats().wall_seconds == pytest.approx(1.3)

    def test_memory_aggregation(self):
        s = self._stats()
        assert s.memory_per_process() == 100
        assert s.memory_per_node(2) == 200
        assert s.memory_per_node(12) == 200  # capped at P

    def test_total_cores(self):
        assert self._stats().total_cores == 12

    def test_phases_only_fallback(self):
        s = RunStats(processes=1, threads=1, phases={"a": 1.0, "b": 2.0})
        assert s.wall_seconds == pytest.approx(3.0)
