"""Machine model tests."""

import pytest

from repro.cluster.machine import NodeSpec, lonestar4


class TestNodeSpec:
    def test_lonestar4_matches_table1(self):
        node = lonestar4().node
        assert node.cores == 12
        assert node.sockets == 2
        assert node.ghz == 3.33
        assert node.ram_bytes == 24 * 1024 ** 3
        assert node.l3_bytes == 12 * 1024 ** 2

    def test_flop_rate(self):
        node = NodeSpec(ghz=2.0, flops_per_cycle=4.0)
        assert node.flops_per_second == pytest.approx(8e9)


class TestPlacement:
    def test_pure_mpi_packs_12_per_node(self):
        m = lonestar4()
        placement = m.placement(24, 1)
        assert placement[:12] == [0] * 12
        assert placement[12:] == [1] * 12

    def test_hybrid_packs_2_per_node(self):
        m = lonestar4()
        placement = m.placement(4, 6)
        assert placement == [0, 0, 1, 1]

    def test_ranks_per_node(self):
        m = lonestar4()
        assert m.ranks_per_node(24, 1) == 12
        assert m.ranks_per_node(4, 6) == 2
        assert m.ranks_per_node(1, 12) == 1

    def test_nodes_used(self):
        m = lonestar4()
        assert m.nodes_used(13, 1) == 2
        assert m.nodes_used(12, 1) == 1

    def test_overflow_rejected(self):
        m = lonestar4()
        with pytest.raises(ValueError):
            m.placement(145, 1)
        with pytest.raises(ValueError):
            m.placement(1, 13)

    def test_total_cores(self):
        assert lonestar4().total_cores == 144
        assert lonestar4(nodes=40).total_cores == 480
