"""SimMPI fuzz: random collective programs vs a sequential oracle.

Each generated program is a sequence of collective operations executed
by every rank; the oracle replays the same sequence sequentially.  Any
divergence (wrong result, lost isolation, deadlock → timeout) fails.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simmpi import SimCluster

OPS = ("allreduce_sum", "allreduce_min", "allreduce_max", "bcast",
       "allgather", "barrier")


def _oracle(ops, P, seed):
    """Sequentially compute what every rank should return."""
    rng = np.random.default_rng(seed)
    per_rank_values = [rng.normal(size=(len(ops), 3)) for _ in range(P)]
    results = [[] for _ in range(P)]
    for i, op in enumerate(ops):
        vals = [per_rank_values[r][i] for r in range(P)]
        if op == "allreduce_sum":
            out = np.sum(vals, axis=0)
            expect = [out] * P
        elif op == "allreduce_min":
            expect = [np.min(vals, axis=0)] * P
        elif op == "allreduce_max":
            expect = [np.max(vals, axis=0)] * P
        elif op == "bcast":
            expect = [vals[i % P]] * P
        elif op == "allgather":
            expect = [np.stack(vals)] * P
        else:  # barrier
            expect = [None] * P
        for r in range(P):
            results[r].append(expect[r])
    return per_rank_values, results


@given(st.integers(2, 5),
       st.lists(st.sampled_from(OPS), min_size=1, max_size=8),
       st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_random_collective_programs(P, ops, seed):
    per_rank_values, expected = _oracle(ops, P, seed)

    def rankfn(comm):
        out = []
        mine = per_rank_values[comm.rank]
        for i, op in enumerate(ops):
            v = mine[i]
            if op == "allreduce_sum":
                out.append(comm.allreduce(v))
            elif op == "allreduce_min":
                out.append(comm.allreduce(v, op="min"))
            elif op == "allreduce_max":
                out.append(comm.allreduce(v, op="max"))
            elif op == "bcast":
                out.append(comm.bcast(v if comm.rank == i % P else None,
                                      root=i % P))
            elif op == "allgather":
                out.append(np.stack(comm.allgather(v)))
            else:
                comm.barrier()
                out.append(None)
        return out

    results, stats = SimCluster(P).run(rankfn)
    for r in range(P):
        for i, op in enumerate(ops):
            if expected[r][i] is None:
                assert results[r][i] is None
            else:
                assert np.allclose(results[r][i], expected[r][i]), \
                    (r, i, op)
    # Clocks advanced for every rank and no one ended in the past.
    assert all(rk.comm_seconds >= 0 for rk in stats.ranks)
