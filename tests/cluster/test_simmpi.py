"""Simulated MPI: collective semantics, isolation, virtual time."""

import numpy as np
import pytest

from repro.cluster.simmpi import SimCluster


def _run(P, fn, *args, threads=1):
    cluster = SimCluster(P, threads_per_rank=threads)
    return cluster.run(fn, *args)


class TestCollectives:
    def test_allreduce_sum_array(self):
        def fn(comm):
            return comm.allreduce(np.full(3, float(comm.rank + 1)))

        results, _ = _run(4, fn)
        for r in results:
            assert np.allclose(r, 10.0)

    def test_allreduce_min_max(self):
        def fn(comm):
            lo = comm.allreduce(float(comm.rank), op="min")
            hi = comm.allreduce(float(comm.rank), op="max")
            return lo, hi

        results, _ = _run(5, fn)
        assert all(r == (0.0, 4.0) for r in results)

    def test_allreduce_rejects_unknown_op(self):
        def fn(comm):
            return comm.allreduce(1.0, op="xor")

        with pytest.raises(ValueError):
            _run(2, fn)

    def test_bcast(self):
        def fn(comm):
            data = {"v": 42} if comm.rank == 1 else None
            return comm.bcast(data, root=1)

        results, _ = _run(3, fn)
        assert all(r == {"v": 42} for r in results)

    def test_gather_scatter(self):
        def fn(comm):
            got = comm.scatter([i * i for i in range(comm.size)]
                               if comm.rank == 0 else None, root=0)
            back = comm.gather(got, root=0)
            return got, back

        results, _ = _run(4, fn)
        for rank, (got, back) in enumerate(results):
            assert got == rank * rank
            if rank == 0:
                assert back == [0, 1, 4, 9]
            else:
                assert back is None

    def test_allgather_order(self):
        def fn(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        results, _ = _run(4, fn)
        assert all(r == ["a", "b", "c", "d"] for r in results)

    def test_reduce_only_root_gets_value(self):
        def fn(comm):
            return comm.reduce(np.array([1.0]), root=2)

        results, _ = _run(4, fn)
        assert results[2][0] == pytest.approx(4.0)
        assert all(results[i] is None for i in (0, 1, 3))


class TestIsolation:
    def test_received_arrays_are_private_copies(self):
        """Distributed-memory semantics: mutating a received buffer must
        not leak into other ranks."""
        def fn(comm):
            data = comm.bcast(np.zeros(4), root=0)
            data += comm.rank  # mutate the local copy
            total = comm.allreduce(data.copy())
            return total

        results, _ = _run(3, fn)
        for r in results:
            assert np.allclose(r, 0 + 1 + 2)


class TestPointToPoint:
    def test_ring(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank * 10, dest=right)
            return comm.recv(source=left)

        results, _ = _run(4, fn)
        assert results == [30, 0, 10, 20]

    def test_fifo_per_channel(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("first", dest=1)
                comm.send("second", dest=1)
                return None
            return comm.recv(0), comm.recv(0)

        results, _ = _run(2, fn)
        assert results[1] == ("first", "second")

    def test_send_validation(self):
        def fn(comm):
            comm.send(1, dest=comm.rank)

        with pytest.raises(ValueError):
            _run(2, fn)


class TestVirtualTime:
    def test_compute_accumulates(self):
        def fn(comm):
            comm.compute(0.5)
            comm.compute(0.25)
            return comm.clock

        results, stats = _run(2, fn)
        assert all(c >= 0.75 for c in results)
        assert stats.ranks[0].comp_seconds == pytest.approx(0.75)

    def test_collective_synchronises_clocks(self):
        def fn(comm):
            comm.compute(1.0 * comm.rank)
            comm.barrier()
            return comm.clock

        results, stats = _run(3, fn)
        # Everyone leaves the barrier at (or after) the slowest arrival.
        assert min(results) >= 2.0
        # Fast ranks booked idle time waiting.
        assert stats.ranks[0].idle_seconds >= 2.0 - 1e-9

    def test_negative_compute_rejected(self):
        def fn(comm):
            comm.compute(-1.0)

        with pytest.raises(ValueError):
            _run(2, fn)

    def test_memory_peak_tracking(self):
        def fn(comm):
            comm.charge_memory(100)
            comm.charge_memory(50)
            return None

        _, stats = _run(2, fn)
        assert stats.ranks[0].memory_bytes == 100


class TestErrors:
    def test_rank_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:  # lint: ignore[RPR101] — deliberate fault
                raise RuntimeError("boom on rank 1")
            comm.barrier()

        with pytest.raises(RuntimeError, match="boom"):
            _run(3, fn)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimCluster(0)


class TestRunStats:
    def test_summary_and_wall(self):
        def fn(comm):
            comm.compute(0.1 * (comm.rank + 1))
            return None

        _, stats = _run(3, fn)
        assert stats.wall_seconds == pytest.approx(0.3)
        assert "P=3" in stats.summary()


class TestReusability:
    def test_same_cluster_runs_twice(self):
        """Regression: groups/queues/dead-set must reset per run()."""
        cluster = SimCluster(3)

        def fn(comm):
            comm.send(comm.rank, dest=(comm.rank + 1) % comm.size)
            got = comm.recv(source=(comm.rank - 1) % comm.size)
            return comm.allreduce(got + 1)

        first, s1 = cluster.run(fn)
        second, s2 = cluster.run(fn)
        assert first == second
        assert s1.wall_seconds == s2.wall_seconds

    def test_run_after_aborted_run(self):
        """An aborted run must not poison the next one."""
        from repro.faults import FaultPlan, RankCrash

        cluster = SimCluster(2, timeout=5.0,
                             fault_plan=FaultPlan([RankCrash(0, "work")]))

        def crashy(comm):
            comm.compute(1.0, label="work")
            return comm.allreduce(1.0)

        def healthy(comm):
            return comm.allreduce(1.0)

        from repro.faults import CollectiveAbortedError
        with pytest.raises(CollectiveAbortedError):
            cluster.run(crashy)
        assert 0 in cluster.dead_ranks()

        cluster.fault_plan = None
        results, _ = cluster.run(healthy)
        assert results == [2.0, 2.0]
        assert cluster.dead_ranks() == ()


class TestTimeoutConfig:
    def test_ctor_timeout_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "7")
        assert SimCluster(1, timeout=3.0).timeout == 3.0

    def test_env_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "7.5")
        assert SimCluster(1).timeout == 7.5

    def test_default_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMMPI_TIMEOUT", raising=False)
        from repro.cluster import simmpi
        assert SimCluster(1).timeout == simmpi._BARRIER_TIMEOUT

    def test_invalid_timeout_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            SimCluster(1, timeout=0.0)
        with pytest.raises(ValueError):
            SimCluster(1, timeout=-1.0)
        monkeypatch.setenv("REPRO_SIMMPI_TIMEOUT", "not-a-number")
        with pytest.raises(ValueError):
            SimCluster(1)


class TestErrorPath:
    """A rank exception must abort peers' collectives promptly and the
    originating error — not the collateral damage — must surface."""

    def test_peers_fail_fast_and_original_error_wins(self):
        import time as _time
        from repro.faults import CollectiveAbortedError

        witnessed = {}

        def fn(comm):
            if comm.rank == 1:  # lint: ignore[RPR101] — deliberate fault
                raise KeyError("the real bug")
            t0 = _time.monotonic()
            try:
                comm.barrier()
            except CollectiveAbortedError as exc:
                witnessed[comm.rank] = (_time.monotonic() - t0, exc)
                raise

        cluster = SimCluster(3, timeout=60.0)
        with pytest.raises(KeyError, match="the real bug"):
            cluster.run(fn)
        # Both survivors saw a typed abort naming the dead rank, long
        # before the 60 s timeout (fail-fast via barrier abort).
        assert set(witnessed) == {0, 2}
        for waited, exc in witnessed.values():
            assert waited < 30.0
            assert exc.op == "barrier"
            assert 1 in exc.dead

    def test_typed_abort_surfaces_without_real_error(self):
        """Divergent schedules surface the informative typed error."""
        from repro.faults import CollectiveAbortedError

        def fn(comm):
            if comm.rank == 0:  # lint: ignore[RPR101] — deliberate divergence
                comm.barrier()
            # rank 1 returns without entering the collective

        with pytest.raises(CollectiveAbortedError) as exc_info:
            SimCluster(2, timeout=0.5).run(fn)
        assert exc_info.value.op == "barrier"
        assert exc_info.value.timed_out
