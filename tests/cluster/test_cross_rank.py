"""Cross-rank work-stealing simulator tests."""

import numpy as np
import pytest

from repro.cluster.cross_rank import CrossRankStealingSim
from repro.parallel.partition import segment_bounds


def _sim(P=4, p=2, **kw):
    return CrossRankStealingSim(ranks=P, threads_per_rank=p, seed=3, **kw)


class TestBasics:
    def test_empty(self):
        st = _sim().run([], [0, 0, 0, 0, 0])
        assert st.makespan == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossRankStealingSim(ranks=0, threads_per_rank=1)
        with pytest.raises(ValueError):
            CrossRankStealingSim(ranks=1, threads_per_rank=1,
                                 remote_attempt_fraction=2.0)
        with pytest.raises(ValueError):
            _sim().run([1.0], [0, 1])      # wrong number of segments
        with pytest.raises(ValueError):
            _sim().run([-1.0] * 4, [0, 1, 2, 3, 4])

    def test_deterministic_by_seed(self):
        costs = np.random.default_rng(0).exponential(1e-4, 800)
        b = segment_bounds(800, 4)
        a = _sim().run(costs, b)
        c = _sim().run(costs, b)
        assert a.makespan == c.makespan
        assert a.inter_steals == c.inter_steals


class TestBalancing:
    def test_rescues_pathological_imbalance(self):
        """All work lands on rank 0's segment; remote steals must pull
        the makespan far below the serial pile-up."""
        costs = np.concatenate([np.full(1000, 1e-4), np.zeros(3000)])
        bounds = segment_bounds(4000, 4)
        st = _sim().run(costs, bounds)
        serial = costs.sum()
        # 8 workers total; even with steal overheads we expect ≥ 4×.
        assert st.makespan < serial / 4
        assert st.inter_steals > 0

    def test_balanced_work_rarely_steals_remotely(self):
        costs = np.full(4000, 1e-4)
        bounds = segment_bounds(4000, 4)
        st = _sim().run(costs, bounds)
        ideal = costs.sum() / 8
        assert st.makespan < 1.3 * ideal
        # Remote traffic stays a small fraction of all steals.
        assert st.inter_steals <= max(10, st.steals)

    def test_makespan_bounds(self):
        rng = np.random.default_rng(5)
        costs = rng.exponential(1e-4, 2000)
        bounds = segment_bounds(2000, 4)
        st = _sim().run(costs, bounds)
        assert st.makespan >= costs.sum() / 8 - 1e-12
        assert st.total_work == pytest.approx(costs.sum())


class TestSimulateFig4Integration:
    def test_stealing_beats_count_on_skew(self, protein_medium):
        from repro.config import ApproxParams
        from repro.parallel import WorkProfile, simulate_fig4
        prof = WorkProfile.from_molecule(protein_medium, ApproxParams())
        count = simulate_fig4(prof, 12, 1, seed=2, noise_sigma=0.0,
                              segmenting="count").wall_seconds
        steal = simulate_fig4(prof, 12, 1, seed=2, noise_sigma=0.0,
                              segmenting="stealing").wall_seconds
        # Stealing recovers the static imbalance minus steal overheads.
        assert steal < 1.05 * count

    def test_unknown_segmenting_rejected(self, protein_small):
        from repro.config import ApproxParams
        from repro.parallel import WorkProfile, simulate_fig4
        prof = WorkProfile.from_molecule(protein_small, ApproxParams())
        with pytest.raises(ValueError):
            simulate_fig4(prof, 2, 1, segmenting="magic")
