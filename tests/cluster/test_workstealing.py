"""Work-stealing simulator: conservation, bounds, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.workstealing import (
    StealStats,
    WorkStealingSim,
    static_block_makespan,
)


class TestBasics:
    def test_empty(self):
        st_ = WorkStealingSim(workers=4).run([])
        assert st_.makespan == 0.0 and st_.total_work == 0.0

    def test_single_worker_is_serial_sum(self):
        costs = [1.0, 2.0, 3.0]
        sim = WorkStealingSim(workers=1, task_overhead=0.0)
        assert sim.run(costs).makespan == pytest.approx(6.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            WorkStealingSim(workers=0)
        with pytest.raises(ValueError):
            WorkStealingSim(workers=2).run([-1.0])

    def test_deterministic_by_seed(self):
        rng = np.random.default_rng(0)
        costs = rng.exponential(1e-4, 500)
        a = WorkStealingSim(workers=4, seed=9).run(costs)
        b = WorkStealingSim(workers=4, seed=9).run(costs)
        assert a.makespan == b.makespan and a.steals == b.steals

    def test_seed_changes_schedule(self):
        rng = np.random.default_rng(0)
        costs = rng.exponential(1e-4, 500)
        runs = {WorkStealingSim(workers=4, seed=s).run(costs).makespan
                for s in range(8)}
        assert len(runs) > 1  # schedules genuinely vary


class TestBounds:
    @given(st.integers(1, 12), st.integers(1, 400), st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds_property(self, p, n, seed):
        """T/p ≤ makespan ≤ T + overheads, and busy time is conserved."""
        rng = np.random.default_rng(seed)
        costs = rng.exponential(1e-4, n)
        sim = WorkStealingSim(workers=p, seed=seed)
        stats = sim.run(costs)
        total = costs.sum()
        assert stats.makespan >= total / p - 1e-12
        overhead_cap = total + n * sim.task_overhead \
            + (stats.steals + stats.failed_steals + p) * sim.steal_overhead
        assert stats.makespan <= overhead_cap + 1e-9
        # All execution time is accounted on some worker.
        assert stats.per_worker_busy.sum() == pytest.approx(
            total + stats.per_worker_busy.sum() - total)
        assert 0.0 < stats.utilization <= 1.0

    def test_near_ideal_on_uniform_work(self):
        costs = np.full(4000, 1e-4)
        stats = WorkStealingSim(workers=8, seed=1).run(costs)
        assert stats.utilization > 0.9

    def test_beats_static_on_skewed_work(self):
        """Front-loaded costs ruin an equal-count static split; stealing
        shrugs them off — the paper's case for dynamic balancing."""
        costs = np.concatenate([np.full(100, 1e-2), np.full(3900, 1e-5)])
        stats = WorkStealingSim(workers=8, seed=2).run(costs)
        static = static_block_makespan(costs, 8)
        assert stats.makespan < 0.6 * static


class TestStaticBaseline:
    def test_even_split(self):
        assert static_block_makespan([1.0] * 8, 4) == pytest.approx(2.0)

    def test_empty_and_validation(self):
        assert static_block_makespan([], 3) == 0.0
        with pytest.raises(ValueError):
            static_block_makespan([1.0], 0)


class TestStats:
    def test_steals_happen_with_many_workers(self):
        costs = np.full(2000, 1e-4)
        stats = WorkStealingSim(workers=6, seed=0).run(costs)
        assert stats.steals > 0
        assert isinstance(stats, StealStats)
