"""Cost model: monotonicity, sanity bounds, the paper's orderings."""

import pytest

from repro.cluster.costmodel import APPROX_MATH_SPEEDUP, CostModel
from repro.cluster.machine import lonestar4


@pytest.fixture(scope="module")
def cm():
    return CostModel(machine=lonestar4(nodes=40))


class TestCompute:
    def test_seconds_per_flop_plausible(self, cm):
        # Between 0.1 and 10 ns per flop for 2012-era scalar code.
        assert 1e-10 < cm.seconds_per_flop() < 1e-8

    def test_born_seconds_positive_and_linear(self, cm):
        one = cm.born_compute_seconds(10, 10, 1000)
        two = cm.born_compute_seconds(20, 20, 2000)
        assert one > 0
        assert two == pytest.approx(2 * one)

    def test_approx_math_speedup(self, cm):
        slow = cm.born_compute_seconds(0, 0, 1e6, approx_math=False)
        fast = cm.born_compute_seconds(0, 0, 1e6, approx_math=True)
        assert slow / fast == pytest.approx(APPROX_MATH_SPEEDUP)

    def test_epol_bucket_quadratic(self, cm):
        a = cm.epol_compute_seconds(0, 100, 0, nbuckets=2)
        b = cm.epol_compute_seconds(0, 100, 0, nbuckets=4)
        assert b == pytest.approx(4 * a)


class TestCacheFactor:
    def test_within_l2_is_one(self, cm):
        assert cm.cache_factor(100 * 1024) == 1.0

    def test_monotone_nondecreasing(self, cm):
        sizes = [10 ** k for k in range(4, 11)]
        factors = [cm.cache_factor(s, cores_sharing_socket=6)
                   for s in sizes]
        assert all(b >= a for a, b in zip(factors, factors[1:]))
        assert factors[-1] <= 1.7

    def test_sharing_socket_raises_factor(self, cm):
        ws = 4 * 1024 * 1024
        assert cm.cache_factor(ws, cores_sharing_socket=6) >= \
            cm.cache_factor(ws, cores_sharing_socket=1)


class TestMemoryPressure:
    def test_no_penalty_below_80pct(self, cm):
        ram = cm.machine.node.ram_bytes
        assert cm.memory_pressure_factor(0.5 * ram) == 1.0

    def test_rises_past_ram(self, cm):
        ram = cm.machine.node.ram_bytes
        f1 = cm.memory_pressure_factor(1.0 * ram)
        f2 = cm.memory_pressure_factor(2.0 * ram)
        assert 1.0 < f1 < f2
        assert f2 == pytest.approx(10.0)


class TestCommunication:
    def test_allreduce_grows_with_p_and_size(self, cm):
        assert cm.allreduce_seconds(1000, 1) == 0.0
        a = cm.allreduce_seconds(1000, 12)
        b = cm.allreduce_seconds(1000, 144)
        c = cm.allreduce_seconds(100000, 144)
        assert 0 < a < b < c

    def test_hybrid_layout_cheaper(self, cm):
        """Same core count: 2 ranks × 6 threads per node communicates
        less than 12 × 1 (the paper's hybrid argument)."""
        mpi = cm.allreduce_seconds(50000, 144, threads=1)
        hyb = cm.allreduce_seconds(50000, 24, threads=6)
        assert hyb < mpi

    def test_point_to_point_ordering(self, cm):
        """Paper §IV-B: threads < same-node processes < cross-node."""
        same = cm.point_to_point_seconds(1000, same_node=True)
        cross = cm.point_to_point_seconds(1000, same_node=False)
        assert same < cross

    def test_collective_sync_grows_with_sqrt_p(self, cm):
        assert cm.collective_sync_seconds(1) == 0.0
        s4 = cm.collective_sync_seconds(4)
        s16 = cm.collective_sync_seconds(16)
        assert s16 == pytest.approx(2 * s4)

    def test_allgather_reduce_positive(self, cm):
        assert cm.allgather_seconds(100, 8) > 0
        assert cm.reduce_seconds(1, 8) > 0
        assert cm.reduce_seconds(1, 1) == 0.0

    def test_gather_priced_below_allgather(self, cm):
        """Data converges on one root instead of fanning back out, so a
        gather must be cheaper than the allgather that used to price it
        — but still real communication."""
        assert cm.gather_seconds(1000, 1) == 0.0
        g = cm.gather_seconds(1000, 16)
        ag = cm.allgather_seconds(1000, 16)
        assert 0 < g < ag
        assert cm.gather_seconds(1000, 64) > g
