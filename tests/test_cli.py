"""CLI tests (main() invoked in-process)."""

import pytest

from repro.cli import build_parser, main
from repro.molecules import pdbio, synthetic_protein


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.atoms == 2000 and args.method == "octree"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "OCT_MPI" in out

    def test_solve_small(self, capsys):
        assert main(["solve", "--atoms", "300", "--seed", "3",
                     "--compare-naive"]) == 0
        out = capsys.readouterr().out
        assert "E_pol" in out and "% difference" in out

    def test_solve_naive_method(self, capsys):
        assert main(["solve", "--atoms", "250", "--method",
                     "naive"]) == 0
        assert "naive" in capsys.readouterr().out

    def test_solve_from_file(self, tmp_path, capsys):
        mol = synthetic_protein(260, seed=2, with_surface=False)
        path = tmp_path / "m.xyzqr"
        pdbio.write_xyzqr(mol, path)
        assert main(["solve", "--file", str(path)]) == 0
        assert "E_pol" in capsys.readouterr().out

    def test_packages(self, capsys):
        assert main(["packages", "--atoms", "300"]) == 0
        out = capsys.readouterr().out
        for name in ("Amber", "Gromacs", "Tinker"):
            assert name in out

    def test_scale(self, capsys):
        assert main(["scale", "--atoms", "300", "--nodes", "12"]) == 0
        out = capsys.readouterr().out
        assert "OCT_MPI" in out and "144" in out
