"""CLI tests (main() invoked in-process)."""

import pytest

from repro.cli import build_parser, main
from repro.molecules import pdbio, synthetic_protein


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.atoms == 2000 and args.method == "octree"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "OCT_MPI" in out

    def test_solve_small(self, capsys):
        assert main(["solve", "--atoms", "300", "--seed", "3",
                     "--compare-naive"]) == 0
        out = capsys.readouterr().out
        assert "E_pol" in out and "% difference" in out

    def test_solve_naive_method(self, capsys):
        assert main(["solve", "--atoms", "250", "--method",
                     "naive"]) == 0
        assert "naive" in capsys.readouterr().out

    def test_solve_from_file(self, tmp_path, capsys):
        mol = synthetic_protein(260, seed=2, with_surface=False)
        path = tmp_path / "m.xyzqr"
        pdbio.write_xyzqr(mol, path)
        assert main(["solve", "--file", str(path)]) == 0
        assert "E_pol" in capsys.readouterr().out

    def test_packages(self, capsys):
        assert main(["packages", "--atoms", "300"]) == 0
        out = capsys.readouterr().out
        for name in ("Amber", "Gromacs", "Tinker"):
            assert name in out

    def test_scale(self, capsys):
        assert main(["scale", "--atoms", "300", "--nodes", "12"]) == 0
        out = capsys.readouterr().out
        assert "OCT_MPI" in out and "144" in out


class TestDoctor:
    def test_healthy_molecule_exits_zero(self, capsys):
        assert main(["doctor", "--atoms", "200", "--seed", "3"]) == 0
        assert "doctor:" in capsys.readouterr().out

    def test_degenerate_file_reports_and_fails(self, tmp_path, capsys):
        mol = synthetic_protein(60, seed=2, with_surface=False)
        mol.positions[1] = mol.positions[0]  # coincident pair
        path = tmp_path / "dup.xyzqr"
        pdbio.write_xyzqr(mol, path)
        assert main(["doctor", "--file", str(path)]) == 1
        out = capsys.readouterr().out
        assert "GRD105" in out and "coincident" in out

    def test_unreadable_molecule_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.xyzqr"
        path.write_text("0.0 0.0 0.0 1.0 0.0\n")  # zero radius
        assert main(["doctor", "--file", str(path)]) == 2
        assert "unreadable" in capsys.readouterr().err


class TestGuardedSolve:
    ARGS = ["solve", "--atoms", "250", "--seed", "3"]

    def test_checkpoint_roundtrip_bitwise(self, tmp_path, capsys):
        import json

        ck = tmp_path / "ck"
        fresh = tmp_path / "fresh.json"
        resumed = tmp_path / "resumed.json"
        assert main(self.ARGS + ["--json", str(fresh)]) == 0
        assert main(self.ARGS + ["--checkpoint", str(ck),
                                 "--stop-after", "born"]) == 0
        assert "stopped after the Born phase" in capsys.readouterr().out
        assert main(self.ARGS + ["--checkpoint", str(ck), "--resume",
                                 "--json", str(resumed)]) == 0
        d1 = json.loads(fresh.read_text())
        d2 = json.loads(resumed.read_text())
        assert d1["guarded"] and d2["guarded"]
        assert d2["energy"] == d1["energy"]  # bitwise-identical resume
        assert d2["born_mean"] == d1["born_mean"]

    def test_no_guard_conflicts_with_checkpoint(self, tmp_path, capsys):
        assert main(self.ARGS + ["--no-guard", "--checkpoint",
                                 str(tmp_path / "ck")]) == 2
        assert "--no-guard" in capsys.readouterr().err

    def test_stop_after_requires_checkpoint(self, capsys):
        assert main(self.ARGS + ["--stop-after", "born"]) == 2
        assert "--stop-after" in capsys.readouterr().err

    def test_no_guard_still_solves(self, capsys):
        assert main(self.ARGS + ["--no-guard"]) == 0
        assert "E_pol" in capsys.readouterr().out

    def test_preflight_failure_exits_one(self, tmp_path, capsys):
        mol = synthetic_protein(60, seed=2, with_surface=False)
        mol.positions[1] = mol.positions[0]
        path = tmp_path / "dup.xyzqr"
        pdbio.write_xyzqr(mol, path)
        assert main(["solve", "--file", str(path)]) == 1
        assert "coincident" in capsys.readouterr().err


class TestServe:
    def test_synthetic_smoke(self, tmp_path, capsys):
        out = tmp_path / "serve.json"
        assert main(["serve", "--synthetic", "12", "--atoms", "120",
                     "--molecules", "2", "--workers", "2",
                     "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "hit rate" in text and "throughput" in text
        import json
        doc = json.loads(out.read_text())
        assert doc["failed"] == 0 and doc["expired"] == 0
        assert doc["ok"] + doc["rejected"] >= 12

    def test_workload_file_warm_hits(self, tmp_path, capsys):
        import json
        workload = tmp_path / "wl.json"
        workload.write_text(json.dumps({"requests": [
            {"atoms": 120, "seed": 4, "repeat": 3},
            {"atoms": 120, "seed": 4, "eps_epol": 0.5},
        ]}))
        out = tmp_path / "serve.json"
        # One worker, batch 1: the repeats run strictly after the first
        # completes, so they must come from the cache or coalesce.
        assert main(["serve", "--workload", str(workload),
                     "--workers", "1", "--batch-size", "1",
                     "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["failed"] == 0
        assert doc["hit_rate"] > 0 or doc["coalesced"] > 0

    def test_metrics_out_includes_serve_counters(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main(["serve", "--synthetic", "6", "--atoms", "120",
                     "--molecules", "1",
                     "--metrics-out", str(metrics)]) == 0
        import json
        doc = json.loads(metrics.read_text())
        assert "serve.requests" in doc
        assert "serve.wait_seconds" in doc
        assert doc["serve.wait_seconds"]["type"] == "histogram"
