"""Exporters: Chrome trace round-trip, validation, RunStats tracks."""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.cluster.trace import PhaseSlice, RankStats, RunStats
from repro.obs.export import (
    chrome_trace,
    render_span_tree,
    runstats_events,
    solver_phase_times,
    trace_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import REAL_PID, VIRTUAL_PID, Tracer


@pytest.fixture
def tracer() -> Tracer:
    tr = Tracer()
    tr.enable()
    with tr.span("solve"):
        with tr.span("solve.sample_surface"):
            pass
        with tr.span("solve.born"):
            with tr.span("solve.octree_build"):
                pass
            with tr.span("born.approx_integrals"):
                pass
            with tr.span("born.push_integrals"):
                pass
        with tr.span("solve.epol"):
            with tr.span("epol.buckets"):
                pass
            with tr.span("epol.traversal"):
                pass
    tr.virtual_span("allreduce", "comm", rank=0, t0=0.1, t1=0.2,
                    payload_bytes=1024)
    return tr


@pytest.fixture
def stats() -> RunStats:
    timeline = [
        PhaseSlice(0, "born", "comp", 0.0, 1.0),
        PhaseSlice(1, "born", "comp", 0.0, 0.8),
        PhaseSlice(1, "allreduce.wait", "idle", 0.8, 1.0),
        PhaseSlice(0, "allreduce", "comm", 1.0, 1.1, payload_bytes=4096),
        PhaseSlice(1, "allreduce", "comm", 1.0, 1.1, payload_bytes=4096),
    ]
    return RunStats(processes=2, threads=6,
                    ranks=[RankStats(0, 1.0, 0.1, 0.0, steals=3),
                           RankStats(1, 0.8, 0.1, 0.2, steals=5)],
                    phases={"born": 1.0, "allreduce": 0.1},
                    timeline=timeline)


def test_chrome_trace_roundtrip_is_valid(tmp_path, tracer, stats):
    reg = MetricsRegistry()
    reg.counter("born.mac_accepts").inc(10)
    path = write_chrome_trace(str(tmp_path / "t.json"), tracer=tracer,
                              runstats=stats, metrics=reg)
    doc = json.loads(open(path, encoding="utf-8").read())
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    # Complete events carry the full X schema.
    for ev in events:
        if ev["ph"] == "X":
            assert isinstance(ev["ts"], (int, float))
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
    # Metrics rode along.
    assert doc["otherData"]["metrics"]["born.mac_accepts"]["value"] == 10


def test_runstats_become_per_rank_tracks(stats):
    events = runstats_events(stats, pid=VIRTUAL_PID + 1)
    xs = [ev for ev in events if ev["ph"] == "X"]
    assert {ev["tid"] for ev in xs} == {0, 1}
    comm = [ev for ev in xs if ev["cat"] == "comm"]
    assert all(ev["args"]["payload_bytes"] == 4096 for ev in comm)
    idle = [ev for ev in xs if ev["cat"] == "idle"]
    assert idle and idle[0]["name"] == "allreduce.wait"
    # Track names are announced via metadata records.
    names = {ev["args"]["name"] for ev in events if ev["ph"] == "M"
             and ev["name"] == "thread_name"}
    assert names == {"rank 0", "rank 1"}


def test_runstats_without_timeline_fall_back_to_phase_bars():
    stats = RunStats(processes=4, threads=1,
                     phases={"born": 2.0, "allreduce": 0.5})
    xs = [ev for ev in runstats_events(stats) if ev["ph"] == "X"]
    assert [ev["name"] for ev in xs] == ["born", "allreduce"]
    assert xs[1]["ts"] == pytest.approx(2.0e6)   # laid out sequentially


def test_multiple_runstats_get_distinct_pids(stats):
    doc = chrome_trace(runstats=[stats, stats])
    pids = {ev["pid"] for ev in doc["traceEvents"] if ev["ph"] == "X"}
    assert pids == {VIRTUAL_PID + 1, VIRTUAL_PID + 2}


def test_validate_catches_broken_events():
    assert validate_chrome_trace(
        {"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                          "pid": 1, "tid": 0}]}) \
        == ["traceEvents[0]: 'X' event missing numeric 'dur'"]
    assert validate_chrome_trace({"traceEvents": "nope"}) \
        == ["top-level 'traceEvents' must be a list"]
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "i", "ts": 0, "pid": 1, "tid": 0}]}) \
        == ["traceEvents[0]: missing 'name'"]
    assert validate_chrome_trace(12) \
        == ["trace must be a JSON object or array"]


def test_solver_phase_times_covers_all_phases(tracer):
    times = solver_phase_times(tracer)
    assert list(times) == ["sample_surface", "octree_build", "born",
                           "push", "epol"]
    assert all(t >= 0.0 for t in times.values())


def test_render_span_tree_nests_by_parent(tracer):
    tree = render_span_tree(tracer)
    lines = tree.splitlines()
    assert lines[0].startswith("solve ")
    assert any(line.startswith("  solve.born") for line in lines)
    assert any(line.startswith("    born.approx_integrals")
               for line in lines)
    # The virtual allreduce event is not part of the real-time tree.
    assert "allreduce" not in tree


def test_trace_summary_counts_tracks(tracer, stats):
    doc = chrome_trace(tracer=tracer, runstats=stats)
    text = trace_summary(doc)
    assert "track" in text and "span totals" in text
    assert "'rank 0'" in text
    assert "solve.born" in text


def test_tracer_events_emit_metadata(tracer):
    events = obs.tracer_events(tracer)
    metas = [ev for ev in events if ev["ph"] == "M"]
    assert any(ev["name"] == "process_name" and ev["pid"] == REAL_PID
               for ev in metas)
    # The virtual allreduce created a virtual process group too.
    assert any(ev["pid"] == VIRTUAL_PID for ev in metas)


def test_runstats_fault_events_become_instants(stats):
    from repro.faults.plan import FaultEvent

    stats.faults = 2
    stats.fault_events = [FaultEvent("crash", 1, 0.9, "born"),
                          FaultEvent("straggler", 0, 0.0, "slowdown x2")]
    try:
        events = runstats_events(stats, pid=VIRTUAL_PID + 1)
    finally:
        stats.faults = 0
        stats.fault_events = []
    instants = [ev for ev in events if ev["ph"] == "i"]
    assert {ev["name"] for ev in instants} == {"fault.crash",
                                               "fault.straggler"}
    crash = next(ev for ev in instants if ev["name"] == "fault.crash")
    assert crash["cat"] == "fault"
    assert crash["tid"] == 1
    assert crash["ts"] == pytest.approx(0.9e6)
    assert crash["args"]["detail"] == "born"
