"""Metrics registry: counter/gauge/histogram semantics + exporters."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.export import metrics_to_json, metrics_to_prometheus
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


def test_counter_monotone(reg: MetricsRegistry):
    c = reg.counter("born.mac_accepts", "accepted far pairs")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ValueError):
        c.inc(-1)
    # Get-or-create returns the same object.
    assert reg.counter("born.mac_accepts") is c


def test_gauge_set_and_inc(reg: MetricsRegistry):
    g = reg.gauge("epol.nbuckets")
    g.set(7)
    g.inc(3)
    assert g.value == 10.0
    g.set(-2.5)            # gauges may go anywhere
    assert g.value == -2.5


def test_histogram_bucketing():
    h = Histogram("h", bounds=(1, 10, 100))
    h.observe_many([0, 1, 5, 10, 50, 1000])
    # side="left": values equal to an edge land in that edge's bucket.
    assert h.bucket_counts() == [2, 2, 1, 1]
    assert h.count == 6
    assert h.sum == pytest.approx(1066.0)
    h.observe(2)
    assert h.bucket_counts()[1] == 3


def test_histogram_accepts_numpy_arrays():
    h = Histogram("h", bounds=(10,))
    h.observe_many(np.arange(20, dtype=np.int64))
    assert h.count == 20
    assert h.bucket_counts() == [11, 9]


def test_type_mismatch_raises(reg: MetricsRegistry):
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_reset_and_names(reg: MetricsRegistry):
    reg.counter("b")
    reg.gauge("a")
    assert reg.names() == ["a", "b"]
    reg.reset()
    assert reg.names() == []
    assert reg.get("a") is None


def test_collect_and_json_roundtrip(reg: MetricsRegistry):
    reg.counter("c").inc(3)
    reg.gauge("g").set(1.5)
    reg.histogram("h", bounds=(1, 2)).observe_many([0.5, 1.5, 5])
    doc = json.loads(metrics_to_json(reg))
    assert doc["c"] == {"type": "counter", "value": 3.0}
    assert doc["g"]["value"] == 1.5
    assert doc["h"]["count"] == 3
    assert doc["h"]["bucket_counts"] == [1, 1, 1]


def test_prometheus_text(reg: MetricsRegistry):
    reg.counter("born.mac_accepts", "accepted far pairs").inc(5)
    reg.gauge("epol.nbuckets").set(12)
    reg.histogram("epol.bucket_occupancy",
                  bounds=(1, 10)).observe_many([0, 5, 100])
    text = metrics_to_prometheus(reg)
    assert "# TYPE repro_born_mac_accepts counter" in text
    assert "repro_born_mac_accepts 5" in text
    assert "repro_epol_nbuckets 12" in text
    # Histogram buckets are cumulative and end with +Inf/_sum/_count.
    assert 'repro_epol_bucket_occupancy_bucket{le="1"} 1' in text
    assert 'repro_epol_bucket_occupancy_bucket{le="10"} 2' in text
    assert 'repro_epol_bucket_occupancy_bucket{le="+Inf"} 3' in text
    assert "repro_epol_bucket_occupancy_count 3" in text
    # Every name is Prometheus-sane (no dots survive).
    for line in text.splitlines():
        if line and not line.startswith("#"):
            assert "." not in line.split(" ")[0].split("{")[0]
