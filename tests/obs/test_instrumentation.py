"""End-to-end: the solver/cluster instrumentation feeds obs correctly."""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.config import ApproxParams
from repro.core.solver import PolarizationSolver
from repro.molecules import synthetic_protein
from repro.obs.export import solver_phase_times
from repro.obs.tracer import VIRTUAL_PID
from repro.parallel import (
    WorkProfile,
    run_fig4_simmpi,
    simulate_fig4,
)


@pytest.fixture
def observed():
    """Enable obs from a clean slate; always leave it off afterwards."""
    obs.enable(reset=True)
    yield obs
    obs.disable()
    obs.get_tracer().reset()
    obs.registry.reset()


PARAMS = ApproxParams(eps_born=0.9, eps_epol=0.9)


def test_solver_records_all_five_phases(observed):
    mol = synthetic_protein(300, seed=3)     # surface sampled while on
    PolarizationSolver(mol, PARAMS).energy()
    times = solver_phase_times(obs.get_tracer())
    assert list(times) == ["sample_surface", "octree_build", "born",
                           "push", "epol"]
    assert all(t > 0.0 for t in times.values())


def test_traversal_metrics_populated(observed, protein_small):
    PolarizationSolver(protein_small, PARAMS).energy()
    snap = obs.registry.collect()
    for name in ("born.mac_accepts", "born.exact_interactions",
                 "epol.exact_interactions", "epol.frontier_visits"):
        assert snap[name]["value"] > 0, name
    assert snap["epol.nbuckets"]["value"] >= 1
    assert snap["born.leaf_visits"]["count"] > 0
    assert snap["epol.bucket_occupancy"]["count"] > 0


def test_metrics_capture_is_off_by_default(protein_small):
    obs.disable()
    obs.registry.reset()
    PolarizationSolver(protein_small, PARAMS).energy()
    assert obs.registry.names() == []
    assert obs.get_tracer().events() == []


def test_simmpi_collectives_carry_payload_bytes(observed, protein_small):
    run_fig4_simmpi(protein_small, PARAMS, processes=3)
    events = obs.get_tracer().events()
    comm = [ev for ev in events if ev.get("pid") == VIRTUAL_PID
            and ev.get("cat") == "comm"]
    assert {ev["name"] for ev in comm} >= {"allreduce", "allgather"}
    allreduce = [ev for ev in comm if ev["name"] == "allreduce"]
    assert {ev["tid"] for ev in allreduce} == {0, 1, 2}
    assert all(ev["args"]["payload_bytes"] > 0 for ev in allreduce)


def test_simulate_fig4_timeline_and_tracks(observed, protein_small):
    profile = WorkProfile.from_molecule(protein_small, PARAMS)
    stats = simulate_fig4(profile, 4, 6, seed=1)
    assert stats.timeline
    assert {s.rank for s in stats.timeline} == {0, 1, 2, 3}
    kinds = {s.kind for s in stats.timeline}
    assert kinds <= {"comp", "comm", "idle"} and "comm" in kinds
    comm_bytes = [s.payload_bytes for s in stats.timeline
                  if s.kind == "comm"]
    assert max(comm_bytes) > 0
    # Timeline converts into one Chrome track per rank.
    events = obs.runstats_events(stats)
    assert {ev["tid"] for ev in events if ev["ph"] == "X"} == {0, 1, 2, 3}
    # Steal events from the intra-rank schedulers landed on the tracer.
    steals = [ev for ev in obs.get_tracer().events()
              if ev["name"] == "steal"]
    assert len(steals) == stats.steals()


def test_runstats_summary_reports_idle_and_steals(observed,
                                                 protein_small):
    profile = WorkProfile.from_molecule(protein_small, PARAMS)
    stats = simulate_fig4(profile, 4, 6, seed=1)
    text = stats.summary()
    assert "idle=" in text and "steals=" in text
    assert stats.steals() == sum(r.steals for r in stats.ranks)
    assert stats.idle_seconds() >= 0.0


def test_workprofile_from_solver_matches_from_molecule(protein_small):
    solver = PolarizationSolver(protein_small, PARAMS)
    prof = WorkProfile.from_solver(solver)
    ref = WorkProfile.from_molecule(protein_small, PARAMS)
    assert prof.natoms == ref.natoms
    assert prof.nbuckets == ref.nbuckets
    assert prof.energy == pytest.approx(ref.energy)
    assert np.allclose(prof.born_radii, ref.born_radii)
    assert prof.data_bytes == ref.data_bytes
    with pytest.raises(ValueError):
        WorkProfile.from_solver(
            PolarizationSolver(protein_small, method="naive"))


def test_dualtree_also_records_metrics(observed, protein_small):
    PolarizationSolver(protein_small, PARAMS, method="dualtree").energy()
    snap = obs.registry.collect()
    assert snap["born.frontier_visits"]["value"] > 0
    assert snap["epol.bucket_occupancy"]["count"] > 0
