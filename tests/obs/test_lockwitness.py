"""LockWitness: runtime lock-order graph, metrics, trace, overhead."""

from __future__ import annotations

import threading
import time

import pytest

import repro.obs as obs
from repro.obs import lockwitness
from repro.obs.export import validate_chrome_trace
from repro.obs.lockwitness import (
    LockOrderError,
    LockWitness,
    WitnessedLock,
    named_condition,
    named_lock,
)


@pytest.fixture(autouse=True)
def _clean_flag():
    yield
    lockwitness.uninstall()


# -- feature flag ----------------------------------------------------------

def test_named_lock_is_raw_threading_lock_when_off():
    assert lockwitness.active_witness() is None
    lock = named_lock("serve.test._lock")
    # Witness off → the factory returns the *actual* threading.Lock
    # type: the disabled path adds zero per-acquisition work.
    assert type(lock) is type(threading.Lock())
    cv = named_condition("serve.test._cv")
    assert isinstance(cv, threading.Condition)


def test_named_lock_is_witnessed_when_installed():
    w = lockwitness.install(LockWitness())
    lock = named_lock("serve.test._lock")
    assert isinstance(lock, WitnessedLock)
    assert lock.name == "serve.test._lock"
    lockwitness.uninstall()
    assert type(named_lock("again")) is type(threading.Lock())
    # Locks built while installed keep reporting to their witness.
    with lock:
        pass
    assert w.lock_names() == ["serve.test._lock"]


def test_disabled_factory_overhead_is_tiny():
    """Witness-off named_lock acquire/release stays raw-Lock fast —
    the repo's <2% serve-stack overhead bound holds by construction."""
    lock = named_lock("overhead.probe")
    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        with lock:
            pass
    per_cycle = (time.perf_counter() - t0) / n
    assert per_cycle < 5e-6  # raw CPython Lock is ~100ns; huge margin


# -- the runtime order graph -----------------------------------------------

def test_nested_acquisition_records_an_edge():
    w = lockwitness.install(LockWitness())
    a = named_lock("A")
    b = named_lock("B")
    with a:
        with b:
            pass
    assert w.edges() == {("A", "B"): 1}
    assert w.graph() == {"A": ["B"], "B": []}
    assert w.cycles() == []
    w.assert_acyclic()  # must not raise


def test_opposite_orders_from_two_threads_form_a_cycle():
    w = lockwitness.install(LockWitness())
    a = named_lock("A")
    b = named_lock("B")

    def backwards():
        with b:
            with a:
                pass

    t = threading.Thread(target=backwards)
    with a:
        with b:
            pass
    t.start()
    t.join()
    assert set(w.edges()) == {("A", "B"), ("B", "A")}
    (cycle,) = w.cycles()
    assert sorted(cycle) == ["A", "B"]
    with pytest.raises(LockOrderError) as exc:
        w.assert_acyclic()
    assert exc.value.cycles == [cycle]
    assert "A" in str(exc.value) and "deadlock" in str(exc.value)
    assert "CYCLIC" in w.summary()


def test_reacquiring_same_name_is_not_an_edge():
    # Two locks may share a name (two service instances); holding one
    # while taking the other must not fabricate a self-cycle.
    w = lockwitness.install(LockWitness())
    first = named_lock("serve.service._lock")
    second = named_lock("serve.service._lock")
    with first:
        with second:
            pass
    assert w.edges() == {}
    assert w.cycles() == []


def test_condition_wait_is_witnessed_as_release_reacquire():
    w = lockwitness.install(LockWitness())
    lock = named_lock("serve.q._lock")
    cv = named_condition("serve.q._not_empty", lock)
    ready = []

    def producer():
        with cv:
            ready.append(True)
            cv.notify_all()

    t = threading.Thread(target=producer)
    with cv:
        t.start()
        assert cv.wait_for(lambda: ready, timeout=5.0)
    t.join()
    # waiter: acquire + wait's reacquire; producer: one acquire.
    assert w.lock_names() == ["serve.q._lock"]
    assert w.edges() == {}
    w.assert_acyclic()


# -- metrics + trace export ------------------------------------------------

def test_held_time_and_contention_metrics_exported():
    obs.enable(reset=True)
    try:
        w = lockwitness.install(LockWitness())
        lock = named_lock("serve.m._lock")
        entered = threading.Event()

        def holder():
            with lock:
                entered.set()
                time.sleep(0.05)

        t = threading.Thread(target=holder)
        t.start()
        assert entered.wait(5.0)
        # Contended: the holder still has it, so this acquire blocks
        # until the holder lets go, then succeeds (contention is only
        # counted on acquires that eventually get the lock).
        assert lock.acquire(blocking=True, timeout=5.0)
        lock.release()
        t.join()
        with lock:
            pass
        hist = obs.registry.get("lock.held_seconds.serve.m._lock")
        assert hist is not None and hist.count >= 2
        cnt = obs.registry.get("lock.contention.serve.m._lock")
        assert cnt is not None and cnt.value >= 1
        assert w.contention("serve.m._lock") >= 1
    finally:
        obs.disable()


def test_metrics_not_written_while_obs_disabled():
    obs.enable(reset=True)
    obs.disable()
    lockwitness.install(LockWitness())
    lock = named_lock("serve.silent._lock")
    with lock:
        pass
    assert obs.registry.get(
        "lock.held_seconds.serve.silent._lock") is None


def test_chrome_trace_artifact_is_valid_and_carries_the_graph(tmp_path):
    w = lockwitness.install(LockWitness())
    a = named_lock("A")
    b = named_lock("B")
    with a:
        with b:
            pass
    path = tmp_path / "locks.json"
    w.write_chrome_trace(str(path))
    import json
    doc = json.loads(path.read_text())
    validate_chrome_trace(doc)
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert names == {"lock:A", "lock:B"}
    assert doc["otherData"]["lockGraph"] == {"A -> B": 1}
    assert doc["otherData"]["cycles"] == []


def test_event_cap_counts_drops_but_keeps_edges():
    w = lockwitness.install(LockWitness(max_events=3))
    a = named_lock("A")
    b = named_lock("B")
    for _ in range(5):
        with a:
            with b:
                pass
    doc = w.chrome_trace()
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 3
    assert doc["otherData"]["droppedEvents"] == 7
    assert w.edges() == {("A", "B"): 5}  # graph never truncates


def test_summary_mentions_counts_and_verdict():
    w = lockwitness.install(LockWitness())
    with named_lock("A"):
        pass
    s = w.summary()
    assert "1 locks" in s and "acyclic" in s


# -- pytest fixture integration --------------------------------------------

def test_lock_witness_fixture_wraps_and_checks(lock_witness):
    lock = named_lock("fixture.probe")
    assert isinstance(lock, WitnessedLock)
    with lock:
        pass
    assert lock_witness.lock_names() == ["fixture.probe"]
