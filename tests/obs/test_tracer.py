"""Tracer: disabled-path overhead, nesting, thread safety."""

from __future__ import annotations

import threading
import time

import pytest

import repro.obs as obs
from repro.obs.tracer import REAL_PID, Tracer


@pytest.fixture
def tracer() -> Tracer:
    tr = Tracer()
    tr.enable()
    return tr


def _spans(tr: Tracer):
    return [ev for ev in tr.events() if ev["ph"] == "X"]


def test_disabled_overhead_is_tiny():
    """The disabled span path must stay near the noise floor.

    The instrumented kernels are chunky (whole traversal passes), so
    the bound is deliberately loose: ~2 µs amortized per disabled span
    would still be invisible next to a single leaf-pair kernel.
    """
    tr = Tracer()
    assert not tr.enabled
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        with tr.span("hot.loop"):
            pass
    per_call = (time.perf_counter() - t0) / n
    assert per_call < 2e-6, f"{per_call * 1e9:.0f} ns per disabled span"
    assert tr.events() == []


def test_span_opened_while_disabled_is_never_recorded():
    tr = Tracer()
    cm = tr.span("early")
    with cm:
        tr.enable()
        with tr.span("inner"):
            pass
    names = [ev["name"] for ev in _spans(tr)]
    assert names == ["inner"]
    # The late span has no parent: "early" was never registered.
    assert "parent_id" not in tr.events()[0]["args"]


def test_nested_parenting(tracer: Tracer):
    with tracer.span("outer"):
        with tracer.span("mid"):
            with tracer.span("leaf"):
                pass
        with tracer.span("mid2"):
            pass
    by_name = {ev["name"]: ev["args"] for ev in _spans(tracer)}
    assert "parent_id" not in by_name["outer"]
    assert by_name["mid"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["leaf"]["parent_id"] == by_name["mid"]["span_id"]
    assert by_name["mid2"]["parent_id"] == by_name["outer"]["span_id"]
    # Exit order: children closed (and were emitted) before parents.
    ids = [ev["args"]["span_id"] for ev in _spans(tracer)]
    assert ids.index(by_name["leaf"]["span_id"]) \
        < ids.index(by_name["mid"]["span_id"]) \
        < ids.index(by_name["outer"]["span_id"])


def test_span_records_args_and_duration(tracer: Tracer):
    with tracer.span("timed", natoms=42):
        time.sleep(0.002)
    (ev,) = _spans(tracer)
    assert ev["pid"] == REAL_PID
    assert ev["args"]["natoms"] == 42
    assert ev["dur"] >= 1e3          # ≥ 1 ms in µs units


def test_thread_safety_parent_chains_stay_per_thread(tracer: Tracer):
    """Concurrent threads never corrupt each other's parent chains."""
    nthreads, reps = 6, 50

    def work(i: int) -> None:
        for r in range(reps):
            with tracer.span(f"outer.{i}"):
                with tracer.span(f"inner.{i}"):
                    pass

    threads = [threading.Thread(target=work, args=(i,), name=f"w{i}")
               for i in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    spans = _spans(tracer)
    assert len(spans) == nthreads * reps * 2
    by_id = {ev["args"]["span_id"]: ev for ev in spans}
    inners = [ev for ev in spans if ev["name"].startswith("inner.")]
    for ev in inners:
        parent = by_id[ev["args"]["parent_id"]]
        i = ev["name"].split(".")[1]
        assert parent["name"] == f"outer.{i}"
        assert parent["tid"] == ev["tid"]


def test_virtual_events_land_on_rank_tracks(tracer: Tracer):
    tracer.virtual_span("born", "comp", rank=3, t0=0.0, t1=0.5)
    tracer.virtual_instant("steal", "workstealing", rank=1, t=0.25,
                           victim=0)
    span_ev, inst_ev = tracer.events()
    assert span_ev["pid"] == obs.VIRTUAL_PID and span_ev["tid"] == 3
    assert span_ev["dur"] == pytest.approx(0.5e6)
    assert inst_ev["ph"] == "i" and inst_ev["tid"] == 1
    assert inst_ev["args"]["victim"] == 0


def test_module_level_enable_reset_cycle():
    obs.disable()
    obs.enable(reset=True)
    try:
        with obs.span("top"):
            obs.instant("marker")
        names = {ev["name"] for ev in obs.get_tracer().events()}
        assert {"top", "marker"} <= names
        assert obs.is_enabled()
    finally:
        obs.disable()
        obs.get_tracer().reset()
        obs.registry.reset()
