"""ShardRouter: deterministic routing, coalescing, failover
re-routing with bitwise parity, partitions, shedding, typed losses."""

import pytest

from repro.faults import FleetFaultPlan, RouterPartition, ShardCrash, \
    ShardStall
from repro.fleet import NoLiveShardsError, ShardedFleet
from repro.fleet.ring import HashRing
from repro.molecules import synthetic_protein
from repro.serve import (
    AdmissionPolicy,
    ServiceOverloadedError,
    SolveRequest,
    SolveService,
)

ATOMS = 60
HOLD = 1.0


def _requests(prefix, count, seed=0):
    return [SolveRequest(molecule=synthetic_protein(ATOMS,
                                                    seed=seed + 31 * i),
                         idempotency_key=f"{prefix}-{i}")
            for i in range(count)]


def _holds(shard_ids, seed=0):
    """One request steered onto each shard (content-hash search)."""
    ring = HashRing(shard_ids)
    out = {}
    j = 0
    while len(out) < len(shard_ids):
        req = SolveRequest(molecule=synthetic_protein(ATOMS,
                                                      seed=seed + 5000 + j),
                           idempotency_key=f"hold-{j}")
        sid = ring.route(req.route_key())
        out.setdefault(sid, req)
        j += 1
    return out


def _energies(tickets):
    return {t.key: float(t.result(timeout=0.0).energy).hex()
            for t in tickets if t.result(timeout=0.0).energy is not None}


def test_same_workload_same_assignment_and_results():
    reqs = _requests("det", 6)
    placements = []
    for _ in range(2):
        with ShardedFleet(shards=3) as fleet:
            assigned = [fleet.router.assignment(r) for r in reqs]
            tickets = [fleet.submit(r) for r in reqs]
            assert fleet.drain(timeout=60.0)
            placements.append(
                (assigned,
                 [t.result(timeout=0.0).shard for t in tickets],
                 _energies(tickets)))
    assert placements[0] == placements[1]
    # dispatch landed where assignment() predicted
    assert placements[0][0] == placements[0][1]


def test_fleet_level_coalescing_shares_one_ticket():
    req = _requests("coal", 1)[0]
    with ShardedFleet(shards=2) as fleet:
        t1 = fleet.submit(req)
        t2 = fleet.submit(SolveRequest(molecule=req.molecule,
                                       idempotency_key=req.idempotency_key))
        assert t1 is t2
        assert fleet.drain(timeout=60.0)
        assert fleet.stats().coalesced == 1
        assert fleet.stats().submitted == 1


def test_shard_death_mid_batch_bitwise_parity_with_single_shard():
    """The satellite contract: kill a shard mid-batch; every energy the
    fleet delivers is bitwise identical to a 1-worker single-service
    run of the same workload."""
    holds = _holds([0, 1])
    reqs = _requests("kill", 6)
    ordered = [holds[0], holds[1]] + reqs
    ring = HashRing([0, 1])
    counts = {0: 0, 1: 0}
    for r in ordered:
        counts[ring.route(r.route_key())] += 1
    victim = max(counts, key=lambda s: (counts[s], -s))
    plan = FleetFaultPlan(
        [ShardStall(0, HOLD, 0), ShardStall(1, HOLD, 0),
         ShardCrash(victim, counts[victim] - 1)], seed=0)

    with ShardedFleet(shards=2, fault_plan=plan) as fleet:
        tickets = [fleet.submit(r) for r in ordered]
        assert fleet.drain(timeout=120.0)
        assert fleet.router.outstanding == 0
        stats = fleet.stats()
        assert stats.dead == [victim]
        assert stats.rerouted == counts[victim] - 1
        results = [t.result(timeout=0.0) for t in tickets]
        assert all(r.status == "ok" for r in results)
        assert all(r.shard != victim for r in results)
        faulted = _energies(tickets)

    svc = SolveService(workers=1, queue_capacity=64)
    ref_tickets = [svc.submit(r) for r in ordered]
    assert svc.drain(timeout=120.0)
    reference = _energies(ref_tickets)
    svc.close()
    assert faulted == reference


def test_partitioned_shard_is_routed_around():
    reqs = _requests("part", 4)
    ring = HashRing([0, 1])
    target = ring.route(reqs[0].route_key())
    towards_target = sum(1 for r in reqs
                         if ring.route(r.route_key()) == target)
    plan = FleetFaultPlan([RouterPartition(target, 0, count=100)],
                          seed=0)
    with ShardedFleet(shards=2, fault_plan=plan) as fleet:
        tickets = [fleet.submit(r) for r in reqs]
        assert fleet.drain(timeout=60.0)
        results = [t.result(timeout=0.0) for t in tickets]
        assert all(r.status == "ok" for r in results)
        assert all(r.shard != target for r in results)
        # every request whose primary owner was partitioned re-routed
        # exactly once (the exclusion is per-dispatch)
        assert fleet.stats().rerouted == towards_target


def test_admission_sheds_with_retry_after_hint():
    holds = _holds([0, 1])
    reqs = _requests("shed", 4)
    plan = FleetFaultPlan([ShardStall(0, HOLD, 0),
                           ShardStall(1, HOLD, 0)], seed=0)
    with ShardedFleet(shards=2, fault_plan=plan,
                      admission=AdmissionPolicy(max_queue_depth=3)
                      ) as fleet:
        tickets = [fleet.submit(holds[0]), fleet.submit(holds[1])]
        shed = []
        for r in reqs:
            try:
                tickets.append(fleet.submit(r))
            except ServiceOverloadedError as exc:
                shed.append(exc)
        # depth at the i-th request is 2 + i; 3 admits only i=0
        assert len(shed) == 3
        assert all(e.retry_after_s > 0 for e in shed)
        assert fleet.drain(timeout=60.0)
        assert fleet.stats().shed == 3
        assert all(t.result(timeout=0.0).status == "ok"
                   for t in tickets)


def test_full_shard_queue_rejection_never_strands_the_entry():
    """Regression: a shard whose bounded queue rejected a dispatch used
    to let QueueFullError escape fleet.submit *after* the entry was
    registered — a stranded ticket drain() waited on forever.  The
    router now routes around the rejecting shard and, with nowhere
    left to place the request, fails the ticket terminally."""
    holds = _holds([0])
    plan = FleetFaultPlan([ShardStall(0, 30.0, 0)], seed=0)
    with ShardedFleet(shards=1, queue_capacity=1,
                      fault_plan=plan) as fleet:
        tickets = [fleet.submit(holds[0])]
        tickets += [fleet.submit(r) for r in _requests("full", 3)]
        rejected = [t for t in tickets
                    if t.done() and "rejected the request"
                    in t.result(timeout=0.0).error]
        assert rejected, "expected at least one queue-full rejection"
        fleet.router.fail_over(0, reason="release the hold")
        assert fleet.drain(timeout=60.0)
        assert fleet.router.outstanding == 0
        assert all(t.done() for t in tickets)


def test_no_live_shards_is_typed():
    with ShardedFleet(shards=1) as fleet:
        fleet.router.fail_over(0, reason="test kill")
        with pytest.raises(NoLiveShardsError):
            fleet.submit(_requests("dead", 1)[0])


def test_outstanding_work_with_no_survivors_fails_typed():
    holds = _holds([0])
    plan = FleetFaultPlan([ShardStall(0, HOLD, 0)], seed=0)
    with ShardedFleet(shards=1, fault_plan=plan) as fleet:
        ticket = fleet.submit(holds[0])
        fleet.router.fail_over(0, reason="test kill")
        assert fleet.drain(timeout=60.0)
        res = ticket.result(timeout=0.0)
        assert res.status == "failed"
        assert "no live shards" in res.error


def test_requests_exceeding_max_moves_fail_typed():
    holds = _holds([0, 1])
    # Long interruptible stalls: both holds stay unresolved until the
    # cancels fire, so neither cancel can lose the delivery race.
    plan = FleetFaultPlan([ShardStall(0, 30.0, 0),
                           ShardStall(1, 30.0, 0)], seed=0)
    with ShardedFleet(shards=2, fault_plan=plan, max_moves=1) as fleet:
        tickets = [fleet.submit(holds[0]), fleet.submit(holds[1])]
        first = fleet.router.fail_over(0, reason="kill 0")
        # hold-0 moved once (0 → 1); killing shard 1 would need a
        # second move, over the max_moves=1 budget
        assert first == 1
        fleet.router.fail_over(1, reason="kill 1")
        assert fleet.drain(timeout=60.0)
        results = {t.key: t.result(timeout=0.0) for t in tickets}
        lost = [r for r in results.values()
                if r.status == "failed" and "re-routed" in r.error]
        assert lost, f"expected a ShardLostError result, got {results}"


def test_rebalance_moves_only_newcomers_keys():
    holds = _holds([0, 1])
    reqs = _requests("reb", 6)
    ordered = [holds[0], holds[1]] + reqs
    ring2, ring3 = HashRing([0, 1]), HashRing([0, 1, 2])
    expected = {r.key() for r in ordered
                if ring2.route(r.route_key())
                != ring3.route(r.route_key())}
    plan = FleetFaultPlan([ShardStall(0, HOLD, 0),
                           ShardStall(1, HOLD, 0)], seed=0)
    with ShardedFleet(shards=2, fault_plan=plan) as fleet:
        tickets = [fleet.submit(r) for r in ordered]
        moves = fleet.spawn_shard(2)
        assert moves == len(expected)
        assert fleet.drain(timeout=120.0)
        results = {t.key: t.result(timeout=0.0) for t in tickets}
        assert all(r.status == "ok" for r in results.values())
        assert {k for k, r in results.items()
                if r.shard == 2} == expected
        assert fleet.stats().rebalance_moves == len(expected)


def test_submit_after_close_raises():
    fleet = ShardedFleet(shards=1)
    fleet.close()
    from repro.serve.errors import ServiceClosedError
    with pytest.raises(ServiceClosedError):
        fleet.submit(_requests("closed", 1)[0])
