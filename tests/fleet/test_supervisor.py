"""FleetSupervisor: probe-driven dead/degraded state machine with a
scripted clock and scripted shard health — no wall-clock coupling."""

from repro.fleet.supervisor import FleetSupervisor


class StubShard:
    """Shard whose health answers follow a script (then hold)."""

    def __init__(self, shard_id, pings=(), stalls=()):
        self.shard_id = shard_id
        self._pings = list(pings)
        self._stalls = list(stalls)

    def ping(self):
        return self._pings.pop(0) if self._pings else True

    def stalled(self):
        return self._stalls.pop(0) if self._stalls else False


class StubRouter:
    """Just enough router surface for the supervisor."""

    def __init__(self, shards):
        self._shards = {s.shard_id: s for s in shards}
        self._off = set()
        self.failed_over = []
        self.quarantined = []

    @property
    def live_shards(self):
        return sorted(s for s in self._shards if s not in self._off)

    def shard(self, sid):
        return self._shards[sid]

    def fail_over(self, sid, reason=""):
        self._off.add(sid)
        self.failed_over.append((sid, reason))
        return 0

    def quarantine(self, sid, reason=""):
        self._off.add(sid)
        self.quarantined.append((sid, reason))
        return 0


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def test_dead_after_max_misses_consecutive():
    router = StubRouter([StubShard(0, pings=[False, False]),
                         StubShard(1)])
    sup = FleetSupervisor(router, clock=FakeClock(), max_misses=2)
    assert sup.probe() == {0: "live", 1: "live"}  # 1 miss: not yet
    assert router.failed_over == []
    assert sup.probe() == {0: "dead", 1: "live"}
    assert [sid for sid, _ in router.failed_over] == [0]
    # the dead shard left the live set: later probes skip it
    assert sup.probe() == {1: "live"}
    assert len(router.failed_over) == 1


def test_successful_ping_resets_miss_counter():
    router = StubRouter([StubShard(0, pings=[False, True, False])])
    sup = FleetSupervisor(router, clock=FakeClock(), max_misses=2)
    assert sup.probe()[0] == "live"   # miss 1
    assert sup.probe()[0] == "live"   # reset
    assert sup.probe()[0] == "live"   # miss 1 again — never dead
    assert router.failed_over == []


def test_stalled_shard_quarantined_not_killed():
    router = StubRouter([StubShard(0, stalls=[True]), StubShard(1)])
    sup = FleetSupervisor(router, clock=FakeClock())
    assert sup.probe() == {0: "degraded", 1: "live"}
    assert [sid for sid, _ in router.quarantined] == [0]
    assert router.failed_over == []


def test_status_ages_use_injected_clock():
    clock = FakeClock()
    router = StubRouter([StubShard(0)])
    sup = FleetSupervisor(router, clock=clock)
    sup.probe()
    clock.now += 7.5
    assert sup.status() == {0: 7.5}
    assert sup.probes == 1


def test_background_loop_probes_and_closes():
    router = StubRouter([StubShard(0)])
    sup = FleetSupervisor(router, probe_interval_s=0.01)
    sup.start()
    import time
    deadline = time.monotonic() + 5.0
    while sup.probes < 3 and time.monotonic() < deadline:
        time.sleep(0.005)
    sup.close()
    assert sup.probes >= 3
    done = sup.probes
    time.sleep(0.03)
    assert sup.probes == done  # loop actually stopped


def test_background_loop_survives_probe_errors():
    """Regression: an exception escaping probe() used to kill the
    supervision thread silently — no more failovers, ever.  The loop
    now records the failure and keeps probing."""

    class ExplodingRouter(StubRouter):
        def __init__(self, shards, booms=2):
            super().__init__(shards)
            self.booms = booms
            self.clean_sweeps = 0

        @property
        def live_shards(self):
            if self.booms > 0:
                self.booms -= 1
                raise RuntimeError("probe boom")
            self.clean_sweeps += 1
            return sorted(s for s in self._shards if s not in self._off)

    router = ExplodingRouter([StubShard(0)])
    sup = FleetSupervisor(router, probe_interval_s=0.01)
    sup.start()
    import time
    deadline = time.monotonic() + 5.0
    while router.clean_sweeps < 2 and time.monotonic() < deadline:
        time.sleep(0.005)
    sup.close()
    assert router.booms == 0          # both failures actually fired
    assert router.clean_sweeps >= 2   # …and probing continued after
