"""Tests for the sharded serve fleet (repro.fleet)."""
