"""Consistent-hash ring: determinism, balance, minimal movement."""

import pytest

from repro.fleet.ring import DEFAULT_REPLICAS, HashRing

KEYS = [f"req-key-{i}" for i in range(400)]


def test_same_shards_same_assignment():
    a = HashRing([0, 1, 2])
    b = HashRing([2, 0, 1])  # construction order must not matter
    assert [a.route(k) for k in KEYS] == [b.route(k) for k in KEYS]


def test_every_shard_owns_keys():
    ring = HashRing([0, 1, 2, 3])
    owners = {ring.route(k) for k in KEYS}
    assert owners == {0, 1, 2, 3}


def test_add_moves_only_to_newcomer():
    ring = HashRing([0, 1])
    before = {k: ring.route(k) for k in KEYS}
    ring.add(2)
    moved = {k for k in KEYS if ring.route(k) != before[k]}
    assert moved, "a 64-vnode ring should claim some of 400 keys"
    # Minimality: every moved key lands on the newcomer, every other
    # key keeps its old owner.
    assert all(ring.route(k) == 2 for k in moved)
    assert all(ring.route(k) == before[k] for k in KEYS
               if k not in moved)


def test_remove_moves_only_victims_keys():
    ring = HashRing([0, 1, 2])
    before = {k: ring.route(k) for k in KEYS}
    ring.remove(1)
    for k in KEYS:
        if before[k] == 1:
            assert ring.route(k) in (0, 2)
        else:
            assert ring.route(k) == before[k]


def test_excluding_skips_dead_shards():
    ring = HashRing([0, 1, 2])
    for k in KEYS[:50]:
        assert ring.route(k, excluding={0, 1}) == 2
    with pytest.raises(KeyError):
        ring.route(KEYS[0], excluding={0, 1, 2})


def test_duplicate_add_rejected():
    ring = HashRing([0])
    with pytest.raises(ValueError):
        ring.add(0)


def test_replicas_shape():
    ring = HashRing([0, 1])
    assert ring.shards == (0, 1)
    ring.remove(0)
    assert ring.shards == (1,)
    # each shard contributes DEFAULT_REPLICAS virtual nodes
    assert len(HashRing([7])._points) == DEFAULT_REPLICAS
