"""Fleet chaos harness: the quick matrix CI gates on, plus the
byte-determinism contract of the JSON report."""

import json

import pytest

from repro.faults.fleetchaos import FLEET_SCENARIOS, run_fleet_chaos


@pytest.fixture(scope="module")
def report():
    return run_fleet_chaos(seed=0, quick=True)


class TestFleetMatrix:
    def test_quick_matrix_all_pass(self, report):
        assert report.all_passed
        assert [r.name for r in report.results] == list(FLEET_SCENARIOS)
        for res in report.results:
            assert res.passed, f"{res.name}: {res.notes}"
            assert res.stranded == 0
            assert res.pending == 0
            assert res.parity
            assert res.deterministic

    def test_fault_scenarios_actually_faulted(self, report):
        by_name = {r.name: r for r in report.results}
        assert by_name["clean"].summary["fleet"]["rerouted"] == 0
        kill = by_name["kill-shard-mid-batch"].summary["fleet"]
        assert len(kill["dead"]) == 1 and kill["rerouted"] >= 1
        kill2 = by_name["kill-two"].summary["fleet"]
        assert len(kill2["dead"]) == 2
        stall = by_name["stall-failover"].summary
        assert stall["fleet"]["degraded"] and not stall["fleet"]["dead"]
        assert stall["stalled_alive"] is True
        reb = by_name["rebalance-under-load"].summary
        assert reb["moves"] >= 1
        assert by_name["overload-shed"].summary["fleet"]["shed"] >= 1

    def test_rerouted_results_keep_bitwise_energy(self, report):
        kill = next(r for r in report.results
                    if r.name == "kill-shard-mid-batch")
        energies = [row["energy_hex"]
                    for row in kill.summary["results"].values()]
        assert energies and all(e is not None for e in energies)

    def test_json_round_trips_and_has_no_wall_clock(self, report):
        doc = json.loads(report.to_json())
        assert doc["all_passed"] is True
        assert len(doc["scenarios"]) == len(FLEET_SCENARIOS)
        text = report.to_json()
        for banned in ("wait_seconds", "service_seconds", "wall",
                       "timestamp", "elapsed"):
            assert banned not in text

    def test_json_is_byte_deterministic_across_runs(self, report):
        again = run_fleet_chaos(seed=0, quick=True)
        assert again.to_json() == report.to_json()
