"""ProcessShard: the multiprocessing backend keeps the shard contract
(bitwise energies, cancellation, death detection) across a real OS
process boundary."""

import pytest

from repro.fleet import ProcessShard, ShardedFleet, ThreadShard
from repro.molecules import synthetic_protein
from repro.serve import SolveRequest

ATOMS = 60


def _req(i, key=None):
    return SolveRequest(molecule=synthetic_protein(ATOMS, seed=40 + i),
                        idempotency_key=key or f"proc-{i}")


def test_process_shard_energy_matches_thread_shard_bitwise():
    ts, ps = ThreadShard(0), ProcessShard(1)
    try:
        want = ts.submit(_req(0, key="a")).result(timeout=120.0)
        got = ps.submit(_req(0, key="a")).result(timeout=120.0)
        assert want.status == "ok" and got.status == "ok"
        assert float(want.energy).hex() == float(got.energy).hex()
        assert got.shard == 1
    finally:
        ts.close()
        ps.close()


def test_process_shard_ping_stats_and_pending():
    shard = ProcessShard(0)
    try:
        assert shard.ping()
        t = shard.submit(_req(1))
        assert t.result(timeout=120.0).status == "ok"
        assert shard.pending == 0   # on_done pruned the ticket map
        stats = shard.stats()
        assert stats.submitted == 1 and stats.completed == 1
    finally:
        shard.close()


def test_killed_process_shard_fails_fast_and_pings_dead():
    shard = ProcessShard(0)
    try:
        assert shard.submit(_req(2)).result(timeout=120.0).status == "ok"
        shard.kill()
        assert not shard.ping()
        # a request fed to the dead child is failed by the feeder, not
        # stranded
        res = shard.submit(_req(3)).result(timeout=30.0)
        assert res.status == "failed"
        assert "died" in res.error
    finally:
        shard.close()


def test_process_shard_death_reroutes_inflight_request():
    """Regression: a child dying with a request on the wire used to
    fail the fleet ticket terminally.  The router now treats the
    feeder's died-mid-request result as a shard crash — fail-over plus
    re-route to the ring successor — so every ticket still lands ok."""
    reqs = [_req(30 + i) for i in range(3)]
    with ShardedFleet(shards=2, backend="process") as fleet:
        target = fleet.router.assignment(reqs[0])
        victim = fleet.router.shard(target)
        tickets = [fleet.submit(r) for r in reqs]
        victim._proc.terminate()            # hard child death, no kill()
        assert fleet.drain(timeout=120.0)
        results = [t.result(timeout=0.0) for t in tickets]
        assert all(r.status == "ok" for r in results), results
        assert target in fleet.stats().dead


def test_concurrent_same_route_submits_keep_child_alive():
    """Regression: the _sent_routes test-and-set raced concurrent
    submits of one route, so a payload-less message could reach the
    child before the payload-bearing one — KeyError in the RPC loop,
    dead shard.  The test-and-set and the enqueue now share the shard
    lock, making the payload message strictly first for its route."""
    import threading

    shard = ProcessShard(0)
    mol = synthetic_protein(ATOMS, seed=99)
    try:
        tickets = [None] * 8

        def go(i):
            tickets[i] = shard.submit(SolveRequest(
                molecule=mol, idempotency_key=f"race-{i}"))

        threads = [threading.Thread(target=go, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = [t.result(timeout=120.0) for t in tickets]
        assert all(r.status == "ok" for r in results)
        assert shard.ping()
    finally:
        shard.close()


def test_unknown_route_is_typed_failure_not_shard_death():
    """The child answers a payload-less message for a route it never
    received with a typed failure instead of dying on KeyError."""
    shard = ProcessShard(0)
    try:
        req = _req(5)
        with shard._lock:                   # withhold the payload
            shard._sent_routes[req.route_key()] = True
        res = shard.submit(req).result(timeout=120.0)
        assert res.status == "failed"
        assert "unknown route" in res.error
        assert shard.ping()                 # the shard survived
        with shard._lock:
            shard._sent_routes.pop(req.route_key())
        ok = shard.submit(_req(5, key="retry")).result(timeout=120.0)
        assert ok.status == "ok"
    finally:
        shard.close()


def test_fleet_process_backend_end_to_end():
    reqs = [_req(10 + i) for i in range(4)]
    with ShardedFleet(shards=2, backend="process") as fleet:
        tickets = [fleet.submit(r) for r in reqs]
        assert fleet.drain(timeout=120.0)
        results = [t.result(timeout=0.0) for t in tickets]
        assert all(r.status == "ok" for r in results)
        assert {r.shard for r in results} <= {0, 1}
