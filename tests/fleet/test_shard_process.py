"""ProcessShard: the multiprocessing backend keeps the shard contract
(bitwise energies, cancellation, death detection) across a real OS
process boundary."""

import pytest

from repro.fleet import ProcessShard, ShardedFleet, ThreadShard
from repro.molecules import synthetic_protein
from repro.serve import SolveRequest

ATOMS = 60


def _req(i, key=None):
    return SolveRequest(molecule=synthetic_protein(ATOMS, seed=40 + i),
                        idempotency_key=key or f"proc-{i}")


def test_process_shard_energy_matches_thread_shard_bitwise():
    ts, ps = ThreadShard(0), ProcessShard(1)
    try:
        want = ts.submit(_req(0, key="a")).result(timeout=120.0)
        got = ps.submit(_req(0, key="a")).result(timeout=120.0)
        assert want.status == "ok" and got.status == "ok"
        assert float(want.energy).hex() == float(got.energy).hex()
        assert got.shard == 1
    finally:
        ts.close()
        ps.close()


def test_process_shard_ping_stats_and_pending():
    shard = ProcessShard(0)
    try:
        assert shard.ping()
        t = shard.submit(_req(1))
        assert t.result(timeout=120.0).status == "ok"
        assert shard.pending == 0   # on_done pruned the ticket map
        stats = shard.stats()
        assert stats.submitted == 1 and stats.completed == 1
    finally:
        shard.close()


def test_killed_process_shard_fails_fast_and_pings_dead():
    shard = ProcessShard(0)
    try:
        assert shard.submit(_req(2)).result(timeout=120.0).status == "ok"
        shard.kill()
        assert not shard.ping()
        # a request fed to the dead child is failed by the feeder, not
        # stranded
        res = shard.submit(_req(3)).result(timeout=30.0)
        assert res.status == "failed"
        assert "died" in res.error
    finally:
        shard.close()


def test_fleet_process_backend_end_to_end():
    reqs = [_req(10 + i) for i in range(4)]
    with ShardedFleet(shards=2, backend="process") as fleet:
        tickets = [fleet.submit(r) for r in reqs]
        assert fleet.drain(timeout=120.0)
        results = [t.result(timeout=0.0) for t in tickets]
        assert all(r.status == "ok" for r in results)
        assert {r.shard for r in results} <= {0, 1}
