"""Chaos harness: scenario matrix, report, and the quick gate CI runs."""

import json

import pytest

from repro.faults import RankCrash
from repro.faults.chaos import (
    DEFAULT_TOLERANCE,
    run_chaos,
    scenario_matrix,
)


@pytest.fixture(scope="module")
def report():
    return run_chaos(seed=0, processes=4, quick=True)


class TestScenarioMatrix:
    def test_same_seed_same_matrix(self):
        a = scenario_matrix(seed=5)
        b = scenario_matrix(seed=5)
        assert [s.name for s in a] == [s.name for s in b]
        assert [s.plan.faults for s in a] == [s.plan.faults for s in b]

    def test_covers_every_fault_class(self):
        scenarios = scenario_matrix(seed=0)
        names = {s.name for s in scenarios}
        assert len(scenarios) >= 8          # the acceptance floor
        assert "clean" in names
        for phase in ("born", "push", "epol"):
            assert f"crash-{phase}" in names
        assert {"crash-double", "drop-collective", "delay-collective",
                "straggler"} <= names

    def test_double_crash_uses_distinct_ranks(self):
        for seed in range(16):
            (double,) = [s for s in scenario_matrix(seed)
                         if s.name == "crash-double"]
            crashes = [f for f in double.plan.faults
                       if isinstance(f, RankCrash)]
            assert len(crashes) == 2
            assert crashes[0].rank != crashes[1].rank

    def test_needs_three_ranks(self):
        with pytest.raises(ValueError):
            scenario_matrix(seed=0, processes=2)


class TestChaosRun:
    def test_quick_matrix_all_pass(self, report):
        assert report.all_passed
        assert len(report.results) >= 8
        for res in report.results:
            assert res.passed
            assert res.deterministic
            assert res.rel_err <= DEFAULT_TOLERANCE

    def test_fault_scenarios_actually_faulted(self, report):
        by_name = {r.name: r for r in report.results}
        assert by_name["clean"].faults == 0
        assert by_name["crash-born"].recoveries >= 1
        assert by_name["crash-double"].faults == 2
        assert by_name["straggler"].faults == 1
        assert by_name["crash-born"].recovery_seconds > 0.0

    def test_table_and_json(self, report):
        table = report.table()
        for res in report.results:
            assert res.name in table
        data = json.loads(report.to_json())
        assert data["all_passed"] is True
        assert data["seed"] == 0
        assert len(data["scenarios"]) == len(report.results)
        assert {"name", "energy", "rel_err", "deterministic",
                "passed"} <= set(data["scenarios"][0])
