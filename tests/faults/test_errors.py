"""Typed fault errors: attributes and diagnostic messages."""

from repro.faults import (
    CollectiveAbortedError,
    FaultError,
    NoSurvivorsError,
    RankCrashedError,
    RecvTimeoutError,
)


def test_hierarchy():
    for cls in (RankCrashedError, RecvTimeoutError,
                CollectiveAbortedError, NoSurvivorsError):
        assert issubclass(cls, FaultError)
    assert issubclass(FaultError, RuntimeError)


def test_rank_crashed_carries_context():
    exc = RankCrashedError(rank=3, clock=1.25, phase="born")
    assert exc.rank == 3
    assert exc.clock == 1.25
    assert exc.phase == "born"
    assert "rank 3" in str(exc)
    assert "'born'" in str(exc)


def test_recv_timeout_names_channel_and_clocks():
    exc = RecvTimeoutError(source=2, dest=0, tag=5, dest_clock=0.5,
                           source_clock=0.75, timeout=10.0)
    assert (exc.source, exc.dest, exc.tag) == (2, 0, 5)
    assert exc.dest_clock == 0.5
    assert exc.source_clock == 0.75
    msg = str(exc)
    assert "rank 0" in msg and "rank 2" in msg and "tag 5" in msg
    # Unknown sender clock is stated, not formatted as a number.
    assert "unknown" in str(RecvTimeoutError(1, 0, 0, dest_clock=0.0))


def test_collective_aborted_names_op_and_dead():
    exc = CollectiveAbortedError(op="allreduce", rank=1, clock=2.0,
                                 dead=(3, 2))
    assert exc.op == "allreduce"
    assert exc.dead == (3, 2)
    assert not exc.timed_out
    assert "allreduce" in str(exc) and "[3, 2]" in str(exc)
    timed = CollectiveAbortedError(op="barrier", rank=0, clock=0.0,
                                   timed_out=True)
    assert timed.timed_out and timed.dead == ()
    assert "RPR101" in str(timed)


def test_no_survivors():
    exc = NoSurvivorsError(dead=(0, 1))
    assert exc.dead == (0, 1)
    assert "all ranks dead" in str(exc)
