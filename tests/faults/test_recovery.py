"""Checkpoint/recovery: shrink semantics and the fault-tolerant solver."""

import numpy as np
import pytest

from repro.cluster.simmpi import SimCluster
from repro.config import ApproxParams
from repro.faults import (
    CollectiveAbortedError,
    FaultPlan,
    RankCrash,
    Straggler,
)
from repro.molecules.generator import synthetic_protein
from repro.parallel.distributed import (
    _Checkpoint,
    _contiguous_runs,
    _reassign_lost,
    run_fig4_ft,
    run_fig4_simmpi,
)

PARAMS = ApproxParams()


@pytest.fixture(scope="module")
def molecule():
    return synthetic_protein(160, seed=11)


@pytest.fixture(scope="module")
def reference(molecule):
    return run_fig4_ft(molecule, PARAMS, processes=4)


class TestHelpers:
    def test_checkpoint_first_write_wins_and_copies(self):
        ckpt = _Checkpoint()
        arr = np.arange(4, dtype=np.float64)
        ckpt.put("integrals", arr)
        ckpt.put("integrals", np.zeros(4))     # ignored: already set
        arr[0] = -1.0                           # caller mutation is private
        got = ckpt.get("integrals")
        assert np.array_equal(got, [0.0, 1.0, 2.0, 3.0])
        got[1] = 99.0                           # reader mutation is private
        assert ckpt.get("integrals")[1] == 1.0
        assert ckpt.get("missing") is None
        assert ckpt.names() == ["integrals"]

    def test_reassign_lost_splits_dead_work_evenly(self):
        owner = np.array([0, 0, 1, 1, 2, 2, 3, 3], dtype=np.int64)
        _reassign_lost(owner, newly_dead=(1, 3), alive=(0, 2))
        # Dead ranks' four blocks split 2/2 between the survivors,
        # in index order — deterministic on every rank.
        assert owner.tolist() == [0, 0, 0, 0, 2, 2, 2, 2]
        assert not set(owner.tolist()) & {1, 3}

    def test_reassign_lost_noop_when_nothing_lost(self):
        owner = np.zeros(5, dtype=np.int64)
        _reassign_lost(owner, newly_dead=(3,), alive=(0,))
        assert owner.tolist() == [0] * 5

    def test_contiguous_runs(self):
        mask = np.array([1, 1, 0, 1, 0, 0, 1], dtype=bool)
        assert _contiguous_runs(mask) == [(0, 2), (3, 4), (6, 7)]
        assert _contiguous_runs(np.zeros(3, dtype=bool)) == []
        assert _contiguous_runs(np.ones(3, dtype=bool)) == [(0, 3)]


class TestShrink:
    def test_shrink_reports_newly_dead_and_new_group(self):
        plan = FaultPlan([RankCrash(rank=2, phase="work")])
        cluster = SimCluster(4, fault_plan=plan, timeout=10.0)

        def fn(comm):
            comm.compute(0.5, label="work")
            try:
                comm.allreduce(1.0)
            except CollectiveAbortedError as exc:
                info = comm.shrink()
                assert exc.dead == info.newly_dead
                # The shrunken group works.
                total = comm.allreduce(1.0)
                return info.epoch, info.alive, info.newly_dead, total
            raise AssertionError("collective should have aborted")

        results, stats = cluster.run(fn)
        assert results[2] is None
        for r in (0, 1, 3):
            epoch, alive, newly_dead, total = results[r]
            assert epoch == 1
            assert alive == (0, 1, 3)
            assert newly_dead == (2,)
            assert total == pytest.approx(3.0)
        assert stats.recoveries == 1


class TestFaultTolerantSolve:
    def test_fault_free_matches_plain_simmpi(self, molecule, reference):
        plain = run_fig4_simmpi(molecule, PARAMS, processes=4)
        assert reference.energy == plain.energy
        assert np.array_equal(reference.born_radii, plain.born_radii)
        assert reference.stats.faults == 0
        assert reference.stats.recoveries == 0

    @pytest.mark.parametrize("phase", ["born", "push", "epol"])
    def test_recovers_from_crash_in_each_phase(self, molecule, reference,
                                               phase):
        plan = FaultPlan([RankCrash(rank=2, phase=phase)])
        out = run_fig4_ft(molecule, PARAMS, processes=4, fault_plan=plan)
        assert out.energy == pytest.approx(reference.energy, rel=1e-12)
        assert np.allclose(out.born_radii, reference.born_radii,
                           rtol=1e-12, atol=0.0)
        assert out.stats.faults == 1
        assert out.stats.recoveries == 1
        assert "recoveries=1" in out.stats.summary()
        if phase == "born":
            # Guaranteed re-execution: the first collective can never
            # complete without the dead rank, so its Q-leaves are
            # always recomputed as recovery work.  For later phases
            # survivors may instead detect the death while draining
            # the *previous* phase's collective, recover its result
            # from the dead rank's checkpoint, and absorb the lost
            # blocks as primary work on the shrunken group — a valid
            # schedule in which nothing is re-executed.
            assert out.stats.recovery_seconds() > 0.0

    def test_recovers_when_rank_zero_dies(self, molecule, reference):
        """The master itself is expendable: the effective root moves."""
        plan = FaultPlan([RankCrash(rank=0, phase="epol")])
        out = run_fig4_ft(molecule, PARAMS, processes=4, fault_plan=plan)
        assert out.energy == pytest.approx(reference.energy, rel=1e-12)

    def test_recovers_from_double_crash(self, molecule, reference):
        plan = FaultPlan([RankCrash(rank=1, phase="born"),
                          RankCrash(rank=3, phase="epol")])
        out = run_fig4_ft(molecule, PARAMS, processes=4, fault_plan=plan)
        assert out.energy == pytest.approx(reference.energy, rel=1e-12)
        assert out.stats.faults == 2
        assert out.stats.recoveries == 2

    def test_straggler_changes_time_not_energy(self, molecule, reference):
        plan = FaultPlan([Straggler(rank=1, factor=3.0)])
        out = run_fig4_ft(molecule, PARAMS, processes=4, fault_plan=plan)
        assert out.energy == reference.energy
        assert out.stats.wall_seconds > reference.stats.wall_seconds

    def test_recovery_is_deterministic(self, molecule):
        """Results are bit-reproducible run over run.  (Virtual *time*
        is not part of the contract under crashes: where the death is
        detected — this phase's collective or the tail of the previous
        one — depends on thread scheduling and shifts the cost
        breakdown, but never the numbers.)"""
        plan = FaultPlan([RankCrash(rank=2, phase="push")])
        a = run_fig4_ft(molecule, PARAMS, processes=4, fault_plan=plan)
        b = run_fig4_ft(molecule, PARAMS, processes=4, fault_plan=plan)
        assert a.energy == b.energy                  # bitwise
        assert np.array_equal(a.born_radii, b.born_radii)
        assert a.stats.faults == b.stats.faults
        assert a.stats.recoveries == b.stats.recoveries
