"""DataCorruption specs and the seeded injection mechanism."""

import numpy as np
import pytest

from repro.faults import DataCorruption, FaultPlan
from repro.guard.inject import apply_corruption, corruption_rng


class TestSpecValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            DataCorruption("born.radii", kind="flip")

    def test_bad_fraction_rejected(self):
        for frac in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                DataCorruption("born.radii", fraction=frac)


class TestPlanQueries:
    def test_occurrence_selects_one_production(self):
        c = DataCorruption("born.radii", occurrence=1)
        plan = FaultPlan([c], seed=3)
        assert plan.has_corruptions
        assert plan.corruption_for("born.radii", 0) is None
        assert plan.corruption_for("born.radii", 1) is c
        assert plan.corruption_for("born.radii", 2) is None
        assert plan.corruption_for("epol.energy", 1) is None

    def test_persistent_fires_from_occurrence_on(self):
        c = DataCorruption("born.radii", occurrence=1, persistent=True)
        plan = FaultPlan([c], seed=3)
        assert plan.corruption_for("born.radii", 0) is None
        assert all(plan.corruption_for("born.radii", k) is c
                   for k in (1, 2, 7))

    def test_plan_without_corruptions(self):
        assert not FaultPlan().has_corruptions
        assert FaultPlan().corruption_for("born.radii", 0) is None


class TestApply:
    SPEC = DataCorruption("born.radii", kind="nan", fraction=0.25)

    def test_deterministic_per_seed_and_occurrence(self):
        arr = np.arange(40, dtype=np.float64)
        a1, i1 = apply_corruption(arr, self.SPEC, seed=5, occurrence=0)
        a2, i2 = apply_corruption(arr, self.SPEC, seed=5, occurrence=0)
        b, ib = apply_corruption(arr, self.SPEC, seed=5, occurrence=1)
        c, ic = apply_corruption(arr, self.SPEC, seed=6, occurrence=0)
        assert np.array_equal(i1, i2)
        np.testing.assert_array_equal(a1, a2)
        assert not np.array_equal(i1, ib) or not np.array_equal(i1, ic)

    def test_input_not_mutated_and_fraction_honoured(self):
        arr = np.arange(40, dtype=np.float64)
        out, idx = apply_corruption(arr, self.SPEC, seed=5, occurrence=0)
        assert not np.isnan(arr).any()  # corruption copies
        assert len(idx) == 10  # 25 % of 40
        assert np.isnan(out[idx]).all()
        mask = np.ones(40, dtype=bool)
        mask[idx] = False
        np.testing.assert_array_equal(out[mask], arr[mask])

    def test_scale_kind_multiplies(self):
        spec = DataCorruption("born.radii", kind="scale", fraction=0.5,
                              factor=8.0)
        arr = np.ones(10, dtype=np.float64)
        out, idx = apply_corruption(arr, spec, seed=5, occurrence=0)
        assert len(idx) == 5
        np.testing.assert_array_equal(out[idx], np.full(5, 8.0))

    def test_scalar_corruption(self):
        spec = DataCorruption("epol.energy", kind="nan", fraction=1.0)
        out, idx = apply_corruption(-42.0, spec, seed=5, occurrence=0)
        assert isinstance(out, float) and np.isnan(out)
        assert np.array_equal(idx, [0])

    def test_rng_keyed_by_array_name(self):
        r1 = corruption_rng(5, "born.radii", 0).integers(1 << 30)
        r2 = corruption_rng(5, "epol.energy", 0).integers(1 << 30)
        assert r1 != r2
