"""FaultPlan: pure queries, seeded generation, validation."""

import pytest

from repro.faults import (
    FaultPlan,
    MessageDelay,
    MessageDrop,
    RankCrash,
    Straggler,
)


class TestQueries:
    def test_crash_for_matches_phase_and_occurrence(self):
        plan = FaultPlan([RankCrash(rank=2, phase="born", occurrence=1)])
        assert plan.crash_for(2, "born", 1, 0.0, 1.0) is not None
        assert plan.crash_for(2, "born", 0, 0.0, 1.0) is None
        assert plan.crash_for(2, "push", 1, 0.0, 1.0) is None
        assert plan.crash_for(1, "born", 1, 0.0, 1.0) is None

    def test_crash_for_at_time_window(self):
        plan = FaultPlan([RankCrash(rank=0, at_time=2.5)])
        assert plan.crash_for(0, "any", 0, 2.0, 3.0) is not None
        assert plan.crash_for(0, "any", 0, 0.0, 2.0) is None
        assert plan.crash_for(0, "any", 0, 2.5, 3.0) is None  # t0 < at

    def test_slowdown_compounds(self):
        plan = FaultPlan([Straggler(rank=1, factor=2.0),
                          Straggler(rank=1, factor=3.0)])
        assert plan.slowdown(1) == pytest.approx(6.0)
        assert plan.slowdown(0) == 1.0

    def test_straggler_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan([Straggler(rank=0, factor=0.0)])

    def test_p2p_fault_matches_channel_and_seq(self):
        drop = MessageDrop(src=0, dst=1, index=1)
        delay = MessageDelay(src=0, seconds=0.5, dst=1, tag=7, index=0)
        plan = FaultPlan([drop, delay])
        d, _ = plan.p2p_fault(0, 1, 0, 1)   # drop's tag is a wildcard
        assert d is drop
        assert plan.p2p_fault(0, 1, 0, 0) == (None, None)  # delay needs tag 7
        _, dl = plan.p2p_fault(0, 1, 7, 0)
        assert dl is delay
        assert plan.p2p_fault(1, 0, 0, 1) == (None, None)

    def test_collective_queries(self):
        plan = FaultPlan([
            MessageDrop(src=2, op="allreduce", index=0),
            MessageDelay(src=1, seconds=0.25, op="allgather", index=3),
        ])
        assert plan.collective_drops("allreduce", 0, (0, 1, 2, 3)) == [2]
        assert plan.collective_drops("allreduce", 1, (0, 1, 2, 3)) == []
        # A dead src outside the alive group no longer matches.
        assert plan.collective_drops("allreduce", 0, (0, 1, 3)) == []
        assert plan.collective_delay(1, "allgather", 3) == \
            pytest.approx(0.25)
        assert plan.collective_delay(1, "allgather", 0) == 0.0

    def test_queries_are_pure(self):
        """Calling a query twice gives the same answer — no firing state."""
        plan = FaultPlan([RankCrash(rank=1, phase="epol")])
        first = plan.crash_for(1, "epol", 0, 0.0, 1.0)
        second = plan.crash_for(1, "epol", 0, 0.0, 1.0)
        assert first is second is plan.faults[0]


class TestRandom:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(seed=42, ranks=8)
        b = FaultPlan.random(seed=42, ranks=8)
        assert a.faults == b.faults

    def test_crash_spares_rank_zero(self):
        for seed in range(64):
            plan = FaultPlan.random(seed=seed, ranks=4, crash_prob=1.0)
            assert 0 not in plan.crash_ranks()

    def test_empty_and_introspection(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.crash_ranks() == []
        full = FaultPlan.random(seed=3, ranks=4, crash_prob=1.0,
                                straggler_prob=1.0)
        assert not full.is_empty
