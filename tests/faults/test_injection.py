"""Fault injection at the simulated-MPI layer.

Covers the runtime hooks a :class:`FaultPlan` drives: crashes during
labelled compute phases, point-to-point drops, straggler slowdowns,
collective retransmission costs and late collective entry — plus the
trace instants each emits.
"""

import pytest

import repro.obs as obs
from repro.cluster.simmpi import SimCluster
from repro.faults import (
    CollectiveAbortedError,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    RankCrash,
    RankCrashedError,
    RecvTimeoutError,
    Straggler,
)


class TestCrash:
    def test_crash_aborts_peer_collectives(self):
        plan = FaultPlan([RankCrash(rank=1, phase="work", occurrence=0)])
        cluster = SimCluster(3, fault_plan=plan, timeout=10.0)

        def fn(comm):
            comm.compute(0.5, label="work")
            try:
                return comm.allreduce(1.0)
            except CollectiveAbortedError as exc:
                return exc

        results, stats = cluster.run(fn)
        assert results[1] is None              # the dead rank
        for r in (0, 2):
            exc = results[r]
            assert isinstance(exc, CollectiveAbortedError)
            assert exc.op == "allreduce"
            assert exc.dead == (1,)
        assert stats.faults == 1
        (event,) = stats.fault_events
        assert event.kind == "crash" and event.rank == 1
        # after_fraction=0.5 of the 0.5 s phase was charged before death.
        assert event.t == pytest.approx(0.25)
        assert "faults=1" in stats.summary()

    def test_uncaught_injected_crash_is_tolerated(self):
        plan = FaultPlan([RankCrash(rank=1, phase="work")])
        cluster = SimCluster(2, fault_plan=plan, timeout=10.0)

        def fn(comm):
            comm.compute(1.0, label="work")
            return comm.rank

        # Rank 0 never enters a collective, so it just finishes; the
        # injected death on rank 1 must not fail the run.
        results, stats = cluster.run(fn)
        assert results == [0, None]
        assert cluster.dead_ranks() == (1,)

    def test_recv_from_dead_source_raises_rank_crashed(self):
        plan = FaultPlan([RankCrash(rank=0, phase="pre")])
        cluster = SimCluster(2, fault_plan=plan, timeout=10.0)

        def fn(comm):
            if comm.rank == 0:
                comm.compute(0.1, label="pre")   # dies here
                comm.send("never sent", dest=1)
            return comm.recv(source=0)

        with pytest.raises(RankCrashedError) as exc_info:
            cluster.run(fn)
        assert exc_info.value.rank == 0

    def test_crash_emits_trace_instant(self):
        obs.enable(reset=True)
        try:
            plan = FaultPlan([RankCrash(rank=0, phase="work")])
            cluster = SimCluster(1, fault_plan=plan, timeout=10.0)
            with pytest.raises(Exception):
                cluster.run(lambda comm: comm.compute(1.0, label="work"))
            names = [e["name"] for e in obs.get_tracer().events()]
            assert "fault.crash" in names
        finally:
            obs.disable()


class TestPointToPoint:
    def test_dropped_send_times_out_receiver(self):
        plan = FaultPlan([MessageDrop(src=0, dst=1, index=0)])
        cluster = SimCluster(2, fault_plan=plan, timeout=0.3)

        def fn(comm):
            if comm.rank == 0:
                comm.send({"payload": 1}, dest=1, tag=4)
                return "sent"
            return comm.recv(source=0, tag=4)

        with pytest.raises(RecvTimeoutError) as exc_info:
            cluster.run(fn)
        exc = exc_info.value
        # The typed error names the channel and both virtual clocks.
        assert (exc.source, exc.dest, exc.tag) == (0, 1, 4)
        assert exc.timeout == pytest.approx(0.3)
        assert exc.dest_clock >= 0.0
        assert exc.source_clock is not None

    def test_delayed_send_arrives_late(self):
        plan = FaultPlan([MessageDelay(src=0, seconds=0.5, dst=1,
                                       index=0)])
        cluster = SimCluster(2, fault_plan=plan, timeout=10.0)

        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=1)
                return None
            got = comm.recv(source=0)
            return got, comm.clock

        results, stats = cluster.run(fn)
        got, clock = results[1]
        assert got == "x"
        assert clock >= 0.5          # receiver synced to the late arrival
        assert any(e.kind == "delay" for e in stats.fault_events)


class TestStraggler:
    def test_straggler_multiplies_compute(self):
        plan = FaultPlan([Straggler(rank=1, factor=2.5)])
        cluster = SimCluster(2, fault_plan=plan, timeout=10.0)

        def fn(comm):
            comm.compute(1.0)
            return comm.clock

        results, stats = cluster.run(fn)
        assert results[0] == pytest.approx(1.0)
        assert results[1] == pytest.approx(2.5)
        # Recorded once, not per compute call.
        straggles = [e for e in stats.fault_events
                     if e.kind == "straggler"]
        assert len(straggles) == 1 and straggles[0].rank == 1


class TestCollectiveFaults:
    def test_collective_drop_completes_but_costs_more(self):
        def fn(comm):
            return comm.allreduce(float(comm.rank))

        clean = SimCluster(4, timeout=10.0)
        _, base = clean.run(fn)

        plan = FaultPlan([MessageDrop(src=2, op="allreduce", index=0)])
        faulty = SimCluster(4, fault_plan=plan, timeout=10.0)
        results, stats = faulty.run(fn)
        # Reliable transport: the value is still correct ...
        assert all(r == pytest.approx(6.0) for r in results)
        # ... but every participant paid the retransmission.
        assert stats.wall_seconds > base.wall_seconds
        assert any(e.kind == "drop" for e in stats.fault_events)

        # Deterministic: same plan, same virtual cost.
        _, again = SimCluster(4, fault_plan=plan, timeout=10.0).run(fn)
        assert again.wall_seconds == stats.wall_seconds

    def test_collective_delay_makes_peers_idle(self):
        plan = FaultPlan([MessageDelay(src=0, seconds=0.5,
                                       op="allreduce", index=0)])
        cluster = SimCluster(3, fault_plan=plan, timeout=10.0)

        def fn(comm):
            return comm.allreduce(1.0)

        results, stats = cluster.run(fn)
        assert all(r == pytest.approx(3.0) for r in results)
        # Ranks 1 and 2 waited for the late entrant.
        for r in (1, 2):
            assert stats.ranks[r].idle_seconds >= 0.5 - 1e-9
