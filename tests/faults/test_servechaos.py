"""Serve chaos harness: the quick matrix CI gates on, plus the
byte-determinism contract of the JSON report."""

import json

import pytest

from repro.faults.servechaos import SERVE_SCENARIOS, run_serve_chaos


@pytest.fixture(scope="module")
def report():
    return run_serve_chaos(seed=0, quick=True)


class TestServeMatrix:
    def test_quick_matrix_all_pass(self, report):
        assert report.all_passed
        assert [r.name for r in report.results] == list(SERVE_SCENARIOS)
        for res in report.results:
            assert res.passed, f"{res.name}: {res.notes}"
            assert res.stranded == 0
            assert res.pending == 0
            assert res.parity
            assert res.deterministic

    def test_fault_scenarios_actually_faulted(self, report):
        by_name = {r.name: r for r in report.results}
        assert by_name["crash-mid-batch"].summary["counters"][
            "worker_crashes"] == 1
        assert by_name["crash-double"].summary["counters"][
            "worker_crashes"] == 2
        assert by_name["straggler-hedge"].summary["counters"][
            "hedge_wins"] == 1
        assert by_name["disk-storm"].summary["counters"][
            "breaker_opens"] == 1
        assert by_name["overload-shed"].summary["counters"]["shed"] == 5
        poisoned = by_name["cache-poison"].summary["results"]
        assert poisoned["poison-b"]["status"] == "degraded"

    def test_requeued_results_keep_bitwise_energy(self, report):
        # Parity with the fault-free twin is asserted per scenario;
        # spot-check that the crash scenario actually carried energies.
        crash = next(r for r in report.results
                     if r.name == "crash-mid-batch")
        energies = [row["energy_hex"]
                    for row in crash.summary["results"].values()]
        assert energies and all(e is not None for e in energies)

    def test_json_round_trips_and_has_no_wall_clock(self, report):
        doc = json.loads(report.to_json())
        assert doc["all_passed"] is True
        assert len(doc["scenarios"]) == len(SERVE_SCENARIOS)
        text = report.to_json()
        # Wall-clock leakage would break byte-determinism between
        # same-seed runs; the report bans timing fields outright.
        for banned in ("wait_seconds", "service_seconds", "wall",
                       "timestamp", "elapsed"):
            assert banned not in text

    def test_json_is_byte_deterministic_across_runs(self, report):
        again = run_serve_chaos(seed=0, quick=True)
        assert again.to_json() == report.to_json()
