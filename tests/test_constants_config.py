"""Unit tests for constants and configuration objects."""

import pytest

from repro.config import ApproxParams, ParallelConfig
from repro.constants import (
    COULOMB_KCAL,
    EPSILON_SOLVENT,
    FOUR_PI,
    TAU_WATER,
    tau,
)


class TestConstants:
    def test_tau_water(self):
        assert TAU_WATER == pytest.approx(1.0 - 1.0 / 80.0)

    def test_tau_general(self):
        assert tau(2.0, 1.0) == pytest.approx(0.5)
        assert tau(80.0, 2.0) == pytest.approx(0.5 - 1.0 / 80.0)

    def test_tau_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tau(-1.0)
        with pytest.raises(ValueError):
            tau(80.0, 0.0)

    def test_four_pi(self):
        import math
        assert FOUR_PI == pytest.approx(4.0 * math.pi)

    def test_coulomb_constant_magnitude(self):
        # kcal·Å/(mol·e²): the standard MD electrostatics constant.
        assert 331.0 < COULOMB_KCAL < 333.0

    def test_epsilon_solvent_is_water(self):
        assert EPSILON_SOLVENT == 80.0


class TestApproxParams:
    def test_defaults_match_paper(self):
        p = ApproxParams()
        assert p.eps_born == 0.9
        assert p.eps_epol == 0.9
        assert not p.approx_math

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproxParams(eps_born=0.0)
        with pytest.raises(ValueError):
            ApproxParams(eps_epol=-1.0)
        with pytest.raises(ValueError):
            ApproxParams(leaf_size=0)
        with pytest.raises(ValueError):
            ApproxParams(max_depth=0)
        with pytest.raises(ValueError):
            ApproxParams(max_depth=22)
        with pytest.raises(ValueError):
            ApproxParams(born_mac="fancy")

    def test_with_returns_modified_copy(self):
        p = ApproxParams()
        q = p.with_(eps_epol=0.3)
        assert q.eps_epol == 0.3
        assert p.eps_epol == 0.9
        assert q.eps_born == p.eps_born

    def test_hashable_for_caching(self):
        assert hash(ApproxParams()) == hash(ApproxParams())
        assert ApproxParams() == ApproxParams()
        assert ApproxParams(eps_born=0.5) != ApproxParams()


class TestParallelConfig:
    def test_total_cores(self):
        assert ParallelConfig(processes=2, threads=6).total_cores == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(processes=0)
        with pytest.raises(ValueError):
            ParallelConfig(threads=0)
        with pytest.raises(ValueError):
            ParallelConfig(work_division="leafy")
