"""Unit + property tests for the shared geometric utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geomutil import (
    UniformCellGrid,
    enclosing_ball_radius,
    icosphere,
    ranges_to_indices,
    unit_icosahedron,
)


class TestUniformCellGrid:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(3)
        return rng.uniform(-10, 10, size=(300, 3))

    def test_query_ball_matches_bruteforce(self, cloud):
        grid = UniformCellGrid(cloud, cell_size=4.0)
        for center in (np.zeros(3), cloud[17], np.array([9.0, -9.0, 3.0])):
            for radius in (1.0, 3.5, 7.0):
                got = np.sort(grid.query_ball(center, radius))
                d = np.linalg.norm(cloud - center, axis=1)
                want = np.flatnonzero(d <= radius)
                assert np.array_equal(got, want)

    def test_neighbor_pairs_match_bruteforce(self, cloud):
        cutoff = 3.0
        grid = UniformCellGrid(cloud, cell_size=cutoff)
        pairs = set()
        for ii, jj in grid.neighbor_pairs(cutoff):
            for a, b in zip(ii, jj):
                assert a < b
                key = (int(a), int(b))
                assert key not in pairs, "pair emitted twice"
                pairs.add(key)
        diff = cloud[:, None, :] - cloud[None, :, :]
        d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        want = {(i, j) for i in range(len(cloud))
                for j in range(i + 1, len(cloud)) if d[i, j] <= cutoff}
        assert pairs == want

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformCellGrid(np.zeros((3, 2)), 1.0)
        with pytest.raises(ValueError):
            UniformCellGrid(np.zeros((3, 3)), 0.0)


class TestRangesToIndices:
    def test_simple(self):
        out = ranges_to_indices(np.array([0, 5, 9]), np.array([3, 7, 9]))
        assert np.array_equal(out, [0, 1, 2, 5, 6])

    def test_empty(self):
        assert len(ranges_to_indices(np.array([4]), np.array([4]))) == 0
        assert len(ranges_to_indices(np.array([], dtype=int),
                                     np.array([], dtype=int))) == 0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            ranges_to_indices(np.array([5]), np.array([3]))

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 30)),
                    max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_matches_concatenated_aranges(self, spans):
        starts = np.array([s for s, _ in spans], dtype=np.int64)
        ends = starts + np.array([w for _, w in spans], dtype=np.int64)
        want = (np.concatenate([np.arange(s, e)
                                for s, e in zip(starts, ends)])
                if len(spans) else np.empty(0, dtype=np.int64))
        got = ranges_to_indices(starts, ends)
        assert np.array_equal(got, want)


class TestIcosphere:
    def test_icosahedron_euler(self):
        v, f = unit_icosahedron()
        assert len(v) == 12 and len(f) == 20
        edges = set()
        for a, b, c in f:
            for e in ((a, b), (b, c), (c, a)):
                edges.add(tuple(sorted(e)))
        assert len(v) - len(edges) + len(f) == 2  # Euler characteristic

    @pytest.mark.parametrize("sub,faces", [(0, 20), (1, 80), (2, 320)])
    def test_subdivision_counts(self, sub, faces):
        v, f = icosphere(sub)
        assert len(f) == faces
        assert np.allclose(np.linalg.norm(v, axis=1), 1.0)

    def test_outward_orientation(self):
        v, f = icosphere(1)
        tri = v[f]
        centroid = tri.mean(axis=1)
        normal = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        assert np.all(np.einsum("ij,ij->i", centroid, normal) > 0)

    def test_negative_subdivision_rejected(self):
        with pytest.raises(ValueError):
            icosphere(-1)


def test_enclosing_ball_radius():
    pts = np.array([[1.0, 0, 0], [0, 2.0, 0], [0, 0, -3.0]])
    assert enclosing_ball_radius(pts, np.zeros(3)) == pytest.approx(3.0)
    assert enclosing_ball_radius(np.empty((0, 3)), np.zeros(3)) == 0.0
